"""Wire-level load testing: drive a live daemon with concurrent clients.

The in-process harness (:func:`repro.serve.harness.run_load_test`)
measures an engine; this module measures a *deployment* — a running
:mod:`repro.serve.daemon` — the way its clients will experience it:
every query is an HTTP round trip through a
:class:`~repro.serve.remote.RemoteOracle`, and the stream is replayed at
several client-concurrency levels, each level fanning the queries across
that many threads with one persistent connection per thread.

The result is a :class:`WireSweepReport`: per concurrency level the
throughput and p50/p95/p99 per-query wire latency, plus the same
observed-vs-guaranteed stretch gate as the in-process harness (a sample
of distinct pairs re-checked against exact BFS on the local graph).  The
report round-trips through JSON so CI can persist and diff it — the
``bench-serve --url`` CLI prints exactly this.

Levels run over the same query stream in order, so the daemon's memo is
cold for the first level and steady-state after — which is what a
concurrency sweep should compare (scheduling overhead, not cache luck).
Pass ``per_level_seeds=True`` for fully independent streams instead.
"""

from __future__ import annotations

import json
import random
import threading
import time
from dataclasses import asdict, dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.graphs import kernels
from repro.graphs.graph import Graph
from repro.obs import latency_summary
from repro.serve.harness import _check_stretch
from repro.serve.remote import RemoteOracle
from repro.serve.workloads import generate_queries

__all__ = [
    "WireSweepLevel",
    "WireSweepReport",
    "run_wire_sweep",
    "ChurnLevel",
    "ChurnSweepReport",
    "run_churn_sweep",
]

_INF = float("inf")


@dataclass(frozen=True)
class WireSweepLevel:
    """One concurrency level of a wire sweep (latencies are per-query ms)."""

    concurrency: int
    num_queries: int
    elapsed_seconds: float
    throughput_qps: float
    latency_mean_ms: float
    latency_p50_ms: float
    latency_p95_ms: float
    latency_p99_ms: float


@dataclass(frozen=True)
class WireSweepReport:
    """A full wire-level load test; flat and JSON-round-trippable."""

    url: str
    oracle: str
    backend: str
    workload: str
    num_vertices: int
    space_in_edges: int
    alpha: float
    beta: float
    num_queries: int
    levels: List[WireSweepLevel]
    stretch_pairs_checked: int
    stretch_violations: int
    stretch_ok: bool
    max_multiplicative_stretch: float
    max_additive_error: float
    #: The daemon's ``/stats`` payload captured after the sweep.
    daemon_stats: Dict[str, Any] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """The report as plain JSON scalars / lists / dicts."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "WireSweepReport":
        """Rebuild a report from :meth:`to_dict` output."""
        data = dict(data)
        data["levels"] = [WireSweepLevel(**level) for level in data.get("levels", [])]
        return cls(**data)

    def to_json(self, indent: int = 2) -> str:
        """The report as a JSON document."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "WireSweepReport":
        """Parse a report previously produced by :meth:`to_json`."""
        return cls.from_dict(json.loads(text))

    def summary(self) -> str:
        """One line per concurrency level, human-readable."""
        lines = [
            f"wire sweep of {self.oracle!r} at {self.url} "
            f"({self.workload}, {self.num_queries} queries, stretch ok={self.stretch_ok})"
        ]
        for level in self.levels:
            lines.append(
                f"  c={level.concurrency:<3d} {level.throughput_qps:8.0f} q/s   "
                f"p50 {level.latency_p50_ms:7.3f}ms   p95 {level.latency_p95_ms:7.3f}ms   "
                f"p99 {level.latency_p99_ms:7.3f}ms"
            )
        return "\n".join(lines)


def _drive_level(
    url: str,
    oracle: Optional[str],
    queries: Sequence[Tuple[int, int]],
    concurrency: int,
    *,
    timeout: float,
    retries: int,
    backoff: float,
) -> WireSweepLevel:
    """Replay ``queries`` across ``concurrency`` client threads, one query per trip."""
    shards = [queries[offset::concurrency] for offset in range(concurrency)]
    shards = [shard for shard in shards if shard]
    per_thread_latencies: List[List[float]] = [[] for _ in shards]
    errors: List[BaseException] = []

    def run_client(index: int, shard: Sequence[Tuple[int, int]]) -> None:
        try:
            client = RemoteOracle(url, oracle=oracle, timeout=timeout,
                                  retries=retries, backoff=backoff)
            with client:
                sink = per_thread_latencies[index]
                for u, v in shard:
                    t0 = time.perf_counter()
                    client.query(u, v)
                    sink.append((time.perf_counter() - t0) * 1000.0)
        except BaseException as error:  # surfaced to the caller below
            errors.append(error)

    threads = [
        threading.Thread(target=run_client, args=(index, shard), daemon=True)
        for index, shard in enumerate(shards)
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    if errors:
        raise errors[0]
    summary = latency_summary(
        [latency for sink in per_thread_latencies for latency in sink]
    )
    return WireSweepLevel(
        concurrency=concurrency,
        num_queries=summary.count,
        elapsed_seconds=elapsed,
        throughput_qps=summary.count / max(elapsed, 1e-9),
        latency_mean_ms=summary.mean,
        latency_p50_ms=summary.p50,
        latency_p95_ms=summary.p95,
        latency_p99_ms=summary.p99,
    )


def run_wire_sweep(
    url: str,
    graph: Graph,
    *,
    oracle: Optional[str] = None,
    workload: str = "uniform",
    num_queries: int = 1000,
    seed: int = 0,
    concurrency: Sequence[int] = (1, 2, 4),
    stretch_sample: int = 100,
    per_level_seeds: bool = False,
    timeout: float = 10.0,
    retries: int = 3,
    backoff: float = 0.05,
    workload_options: Optional[Dict[str, Any]] = None,
) -> WireSweepReport:
    """Load-test a live daemon over the wire at several concurrency levels.

    Parameters
    ----------
    url:
        Daemon base URL (``http://host:port``).
    graph:
        The graph the daemon's oracle was built on — used to generate the
        query stream and for the exact-BFS stretch re-check.  Vertex-count
        agreement with the daemon is verified up front.
    oracle:
        Served oracle name (``None`` = the daemon's default).
    workload, num_queries, seed, workload_options:
        The seeded query stream, exactly as in the in-process harness.
    concurrency:
        Client-thread counts to sweep, each level replaying the stream.
    stretch_sample:
        Distinct stream pairs re-checked against exact BFS through the
        wire (0 skips the gate).
    per_level_seeds:
        Generate an independent stream per level (seed + level index)
        instead of replaying one stream.

    Raises
    ------
    RemoteOracleError
        If the daemon is unreachable after the transport retry budget.
    ValueError
        For empty/invalid concurrency lists or a graph whose vertex count
        disagrees with the daemon's oracle.
    """
    levels = [int(c) for c in concurrency]
    if not levels or any(c < 1 for c in levels):
        raise ValueError(f"concurrency levels must be positive ints, got {concurrency!r}")
    if stretch_sample < 0:
        raise ValueError(f"stretch_sample must be >= 0, got {stretch_sample}")
    probe = RemoteOracle(url, oracle=oracle, timeout=timeout, retries=retries,
                         backoff=backoff)
    if graph.num_vertices != probe.num_vertices:
        raise ValueError(
            f"local graph has {graph.num_vertices} vertices but the daemon's "
            f"{probe.oracle_name!r} oracle serves {probe.num_vertices}"
        )
    queries = generate_queries(graph, workload, num_queries, seed=seed,
                               **(workload_options or {}))
    measured: List[WireSweepLevel] = []
    with probe:
        for index, level in enumerate(levels):
            stream = queries
            if per_level_seeds and index:
                stream = generate_queries(graph, workload, num_queries,
                                          seed=seed + index,
                                          **(workload_options or {}))
            measured.append(
                _drive_level(url, oracle, stream, level, timeout=timeout,
                             retries=retries, backoff=backoff)
            )
        checked, violations, max_mult, max_additive = (0, 0, 1.0, 0.0)
        if stretch_sample:
            checked, violations, max_mult, max_additive = _check_stretch(
                graph, probe, queries, stretch_sample
            )
        daemon_stats = probe.daemon_stats()
        return WireSweepReport(
            url=probe.url,
            oracle=probe.oracle_name,
            backend=str(probe.stats().get("remote_backend", "unknown")),
            workload=workload,
            num_vertices=graph.num_vertices,
            space_in_edges=probe.space_in_edges,
            alpha=probe.alpha,
            beta=probe.beta,
            num_queries=len(queries),
            levels=measured,
            stretch_pairs_checked=checked,
            stretch_violations=violations,
            stretch_ok=violations == 0,
            max_multiplicative_stretch=max_mult,
            max_additive_error=max_additive,
            daemon_stats=daemon_stats,
        )


# ----------------------------------------------------------------------
# Churn sweep: concurrent queries + mutations against a *live* daemon
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ChurnLevel:
    """One concurrency level of a churn sweep (queries racing mutations)."""

    concurrency: int
    num_queries: int
    elapsed_seconds: float
    throughput_qps: float
    latency_mean_ms: float
    latency_p50_ms: float
    latency_p95_ms: float
    latency_p99_ms: float
    #: Mutation batches the level's mutator posted while queries ran.
    mutation_batches: int
    #: Effective operations those batches applied.
    mutations_applied: int
    #: Distinct oracle versions observed in this level's tagged answers.
    versions_observed: int
    staleness_mean: float
    staleness_max: int
    #: Fraction of answers still carrying their version's guarantee.
    guaranteed_fraction: float


@dataclass(frozen=True)
class ChurnSweepReport:
    """A wire-level churn test of a live daemon; JSON-round-trippable.

    ``guarantee_ok`` is the acceptance gate: every sampled tagged answer
    was re-checked against exact BFS on the locally reconstructed graph at
    its version's watermark and satisfied
    ``d_G <= answer <= alpha_v * d_G + beta_v`` — the version-tag
    invariant of :mod:`repro.serve.live`.
    """

    url: str
    oracle: str
    backend: str
    workload: str
    num_vertices: int
    num_queries: int
    levels: List[ChurnLevel]
    mutations_applied: int
    rebuilds: int
    forced_rebuilds: int
    incremental_repairs: int
    final_version: int
    answers_checked: int
    guarantee_violations: int
    guarantee_ok: bool
    max_multiplicative_stretch: float
    max_additive_error: float
    #: The daemon's ``/stats`` payload captured after the sweep.
    daemon_stats: Dict[str, Any] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """The report as plain JSON scalars / lists / dicts."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ChurnSweepReport":
        """Rebuild a report from :meth:`to_dict` output."""
        data = dict(data)
        data["levels"] = [ChurnLevel(**level) for level in data.get("levels", [])]
        return cls(**data)

    def to_json(self, indent: int = 2) -> str:
        """The report as a JSON document."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ChurnSweepReport":
        """Parse a report previously produced by :meth:`to_json`."""
        return cls.from_dict(json.loads(text))

    def summary(self) -> str:
        """One line per concurrency level, human-readable."""
        lines = [
            f"churn sweep of {self.oracle!r} at {self.url} "
            f"({self.workload}, {self.num_queries} queries/level, "
            f"{self.mutations_applied} mutations, {self.rebuilds} rebuilds, "
            f"guarantee ok={self.guarantee_ok})"
        ]
        for level in self.levels:
            lines.append(
                f"  c={level.concurrency:<3d} {level.throughput_qps:8.0f} q/s   "
                f"p95 {level.latency_p95_ms:7.3f}ms   "
                f"staleness mean {level.staleness_mean:5.2f} max {level.staleness_max:<3d} "
                f"versions {level.versions_observed}"
            )
        return "\n".join(lines)


#: One recorded tagged answer: (u, v, value, version, staleness, guaranteed).
_TaggedRecord = Tuple[int, int, float, int, int, bool]


def _drive_churn_level(
    url: str,
    oracle: Optional[str],
    queries: Sequence[Tuple[int, int]],
    concurrency: int,
    *,
    mutate: Callable[[], Tuple[int, int]],
    timeout: float,
    retries: int,
    backoff: float,
) -> Tuple[ChurnLevel, List[_TaggedRecord]]:
    """Replay ``queries`` across threads while ``mutate`` churns the graph.

    Every client error is re-raised — a query rejected or dropped during a
    rebuild fails the sweep, which is exactly the hot-swap property under
    test.  Returns the level plus every tagged answer for the post-hoc
    guarantee check.
    """
    shards = [queries[offset::concurrency] for offset in range(concurrency)]
    shards = [shard for shard in shards if shard]
    per_thread_latencies: List[List[float]] = [[] for _ in shards]
    per_thread_answers: List[List[_TaggedRecord]] = [[] for _ in shards]
    errors: List[BaseException] = []
    mutation_result: List[Tuple[int, int]] = []

    def run_client(index: int, shard: Sequence[Tuple[int, int]]) -> None:
        try:
            client = RemoteOracle(url, oracle=oracle, timeout=timeout,
                                  retries=retries, backoff=backoff)
            with client:
                latency_sink = per_thread_latencies[index]
                answer_sink = per_thread_answers[index]
                for u, v in shard:
                    t0 = time.perf_counter()
                    answer = client.query_tagged(u, v)
                    latency_sink.append((time.perf_counter() - t0) * 1000.0)
                    answer_sink.append((u, v, answer.value, answer.version,
                                        answer.staleness, answer.guaranteed))
        except BaseException as error:  # surfaced to the caller below
            errors.append(error)

    def run_mutator() -> None:
        try:
            mutation_result.append(mutate())
        except BaseException as error:
            errors.append(error)

    threads = [
        threading.Thread(target=run_client, args=(index, shard), daemon=True)
        for index, shard in enumerate(shards)
    ]
    threads.append(threading.Thread(target=run_mutator, daemon=True))
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    if errors:
        raise errors[0]
    batches, applied = mutation_result[0] if mutation_result else (0, 0)
    answers = [record for sink in per_thread_answers for record in sink]
    summary = latency_summary(
        [latency for sink in per_thread_latencies for latency in sink]
    )
    staleness_values = [record[4] for record in answers]
    level = ChurnLevel(
        concurrency=concurrency,
        num_queries=summary.count,
        elapsed_seconds=elapsed,
        throughput_qps=summary.count / max(elapsed, 1e-9),
        latency_mean_ms=summary.mean,
        latency_p50_ms=summary.p50,
        latency_p95_ms=summary.p95,
        latency_p99_ms=summary.p99,
        mutation_batches=batches,
        mutations_applied=applied,
        versions_observed=len({record[3] for record in answers}),
        staleness_mean=(sum(staleness_values) / len(staleness_values)
                        if staleness_values else 0.0),
        staleness_max=max(staleness_values, default=0),
        guaranteed_fraction=(sum(1 for record in answers if record[5]) / len(answers)
                             if answers else 1.0),
    )
    return level, answers


def run_churn_sweep(
    url: str,
    graph: Graph,
    *,
    oracle: Optional[str] = None,
    workload: str = "uniform",
    num_queries: int = 400,
    seed: int = 0,
    concurrency: Sequence[int] = (1, 2, 4),
    deletions_per_batch: int = 2,
    batches_per_level: int = 3,
    check_sample: int = 200,
    timeout: float = 10.0,
    retries: int = 3,
    backoff: float = 0.05,
    workload_options: Optional[Dict[str, Any]] = None,
) -> ChurnSweepReport:
    """Drive a *live* daemon with concurrent queries and mutation batches.

    Per concurrency level, client threads replay a seeded query stream via
    ``query_tagged`` while one mutator thread posts ``batches_per_level``
    deletion batches (``deletions_per_batch`` random edges each, seeded) —
    so queries race mutations and background rebuilds the whole time.  The
    sweep keeps a client-side model of the graph: it replays each batch
    locally in the daemon's effective-operation order and asserts the
    daemon's receipt agrees (the sweep must be the oracle's only mutator).

    The post-hoc gate reconstructs, for each version observed in a sampled
    answer, the graph at that version's watermark, and checks the answer
    against exact BFS there with the *version's own* ``(alpha, beta)``
    (repair-widened betas included).  Deletions-only churn keeps every
    stale answer's guarantee valid — the decremental upper-bound argument
    this sweep exists to exercise end to end.

    Raises ``ValueError`` when the served oracle is not live, and
    ``RuntimeError`` when the daemon's mutation log disagrees with the
    local model (a second mutator) or a tagged version is unknown.
    """
    levels = [int(c) for c in concurrency]
    if not levels or any(c < 1 for c in levels):
        raise ValueError(f"concurrency levels must be positive ints, got {concurrency!r}")
    if deletions_per_batch < 1:
        raise ValueError(f"deletions_per_batch must be >= 1, got {deletions_per_batch}")
    if batches_per_level < 0:
        raise ValueError(f"batches_per_level must be >= 0, got {batches_per_level}")
    if check_sample < 0:
        raise ValueError(f"check_sample must be >= 0, got {check_sample}")
    probe = RemoteOracle(url, oracle=oracle, timeout=timeout, retries=retries,
                         backoff=backoff)
    if not probe.is_live:
        raise ValueError(
            f"oracle {probe.oracle_name!r} at {url} is not live; churn sweeps "
            "need a daemon serving a live spec (repro serve-daemon --live)"
        )
    if graph.num_vertices != probe.num_vertices:
        raise ValueError(
            f"local graph has {graph.num_vertices} vertices but the daemon's "
            f"{probe.oracle_name!r} oracle serves {probe.num_vertices}"
        )
    rng = random.Random(seed)
    current = graph.copy()            # client-side model of the daemon's graph
    ops: List[Tuple[str, int, int]] = []   # local replica of the effective op log

    def make_mutator() -> Callable[[], Tuple[int, int]]:
        def run() -> Tuple[int, int]:
            batches = applied = 0
            for _ in range(batches_per_level):
                time.sleep(0.005)     # let queries interleave with the churn
                edges = list(current.edges())
                if len(edges) < deletions_per_batch:
                    break
                batch = rng.sample(edges, deletions_per_batch)
                receipt = probe.mutate(deletes=batch)
                if receipt.get("applied") != len(batch):
                    raise RuntimeError(
                        f"daemon applied {receipt.get('applied')} of a "
                        f"{len(batch)}-deletion batch; is another client "
                        "mutating this oracle?"
                    )
                for u, v in batch:
                    current.remove_edge(u, v)
                    ops.append(("delete", u, v) if u < v else ("delete", v, u))
                batches += 1
                applied += len(batch)
            return batches, applied
        return run

    measured: List[ChurnLevel] = []
    all_answers: List[_TaggedRecord] = []
    with probe:
        for index, level in enumerate(levels):
            stream = generate_queries(graph, workload, num_queries,
                                      seed=seed + index,
                                      **(workload_options or {}))
            churn_level, answers = _drive_churn_level(
                url, oracle, stream, level, mutate=make_mutator(),
                timeout=timeout, retries=retries, backoff=backoff,
            )
            measured.append(churn_level)
            all_answers.extend(answers)
        daemon_stats = probe.daemon_stats()
    oracle_stats = daemon_stats.get("oracles", {}).get(probe.oracle_name, {})
    live = oracle_stats.get("live")
    if not isinstance(live, dict):
        raise RuntimeError(f"daemon reported no live stats for {probe.oracle_name!r}")
    if live.get("applied_mutations") != len(ops):
        raise RuntimeError(
            f"daemon log has {live.get('applied_mutations')} mutations but this "
            f"sweep applied {len(ops)}; is another client mutating this oracle?"
        )
    versions = {entry["version"]: entry for entry in live.get("versions", [])}
    checked = violations = 0
    max_mult, max_additive = 1.0, 0.0
    if check_sample and all_answers:
        sample = all_answers
        if len(sample) > check_sample:
            sample = random.Random(seed + 1).sample(sample, check_sample)
        graphs: Dict[int, Graph] = {}
        exact: Dict[Tuple[int, int], Dict[int, float]] = {}
        for u, v, value, version, _staleness, _guaranteed in sample:
            meta = versions.get(version)
            if meta is None:
                raise RuntimeError(
                    f"answer tagged with unknown version {version}; "
                    f"daemon knows {sorted(versions)}"
                )
            watermark = int(meta["watermark"])
            if watermark not in graphs:
                snapshot = graph.copy()
                for op, a, b in ops[:watermark]:
                    if op == "insert":
                        snapshot.add_edge(a, b)
                    else:
                        snapshot.remove_edge(a, b)
                graphs[watermark] = snapshot
            key = (watermark, u)
            if key not in exact:
                exact[key] = kernels.bfs_distances(graphs[watermark].csr(), u,
                                                   as_float=True)
            d = exact[key].get(v, _INF)
            checked += 1
            if d == _INF:
                if value != _INF:
                    violations += 1
                continue
            if value < d - 1e-9 or value > meta["alpha"] * d + meta["beta"] + 1e-9:
                violations += 1
                continue
            if d > 0:
                max_mult = max(max_mult, value / d)
            max_additive = max(max_additive, value - d)
    return ChurnSweepReport(
        url=probe.url,
        oracle=probe.oracle_name,
        backend=str(probe.stats().get("remote_backend", "unknown")),
        workload=workload,
        num_vertices=graph.num_vertices,
        num_queries=num_queries,
        levels=measured,
        mutations_applied=len(ops),
        rebuilds=int(live.get("rebuilds", 0)),
        forced_rebuilds=int(live.get("forced_rebuilds", 0)),
        incremental_repairs=int(live.get("incremental_repairs", 0)),
        final_version=int(live.get("version", 0)),
        answers_checked=checked,
        guarantee_violations=violations,
        guarantee_ok=violations == 0,
        max_multiplicative_stretch=max_mult,
        max_additive_error=max_additive,
        daemon_stats=daemon_stats,
    )
