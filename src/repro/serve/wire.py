"""Wire-level load testing: drive a live daemon with concurrent clients.

The in-process harness (:func:`repro.serve.harness.run_load_test`)
measures an engine; this module measures a *deployment* — a running
:mod:`repro.serve.daemon` — the way its clients will experience it:
every query is an HTTP round trip through a
:class:`~repro.serve.remote.RemoteOracle`, and the stream is replayed at
several client-concurrency levels, each level fanning the queries across
that many threads with one persistent connection per thread.

The result is a :class:`WireSweepReport`: per concurrency level the
throughput and p50/p95/p99 per-query wire latency, plus the same
observed-vs-guaranteed stretch gate as the in-process harness (a sample
of distinct pairs re-checked against exact BFS on the local graph).  The
report round-trips through JSON so CI can persist and diff it — the
``bench-serve --url`` CLI prints exactly this.

Levels run over the same query stream in order, so the daemon's memo is
cold for the first level and steady-state after — which is what a
concurrency sweep should compare (scheduling overhead, not cache luck).
Pass ``per_level_seeds=True`` for fully independent streams instead.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.graphs.graph import Graph
from repro.serve.harness import _check_stretch, nearest_rank_percentile
from repro.serve.remote import RemoteOracle
from repro.serve.workloads import generate_queries

__all__ = ["WireSweepLevel", "WireSweepReport", "run_wire_sweep"]


@dataclass(frozen=True)
class WireSweepLevel:
    """One concurrency level of a wire sweep (latencies are per-query ms)."""

    concurrency: int
    num_queries: int
    elapsed_seconds: float
    throughput_qps: float
    latency_mean_ms: float
    latency_p50_ms: float
    latency_p95_ms: float
    latency_p99_ms: float


@dataclass(frozen=True)
class WireSweepReport:
    """A full wire-level load test; flat and JSON-round-trippable."""

    url: str
    oracle: str
    backend: str
    workload: str
    num_vertices: int
    space_in_edges: int
    alpha: float
    beta: float
    num_queries: int
    levels: List[WireSweepLevel]
    stretch_pairs_checked: int
    stretch_violations: int
    stretch_ok: bool
    max_multiplicative_stretch: float
    max_additive_error: float
    #: The daemon's ``/stats`` payload captured after the sweep.
    daemon_stats: Dict[str, Any] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """The report as plain JSON scalars / lists / dicts."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "WireSweepReport":
        """Rebuild a report from :meth:`to_dict` output."""
        data = dict(data)
        data["levels"] = [WireSweepLevel(**level) for level in data.get("levels", [])]
        return cls(**data)

    def to_json(self, indent: int = 2) -> str:
        """The report as a JSON document."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "WireSweepReport":
        """Parse a report previously produced by :meth:`to_json`."""
        return cls.from_dict(json.loads(text))

    def summary(self) -> str:
        """One line per concurrency level, human-readable."""
        lines = [
            f"wire sweep of {self.oracle!r} at {self.url} "
            f"({self.workload}, {self.num_queries} queries, stretch ok={self.stretch_ok})"
        ]
        for level in self.levels:
            lines.append(
                f"  c={level.concurrency:<3d} {level.throughput_qps:8.0f} q/s   "
                f"p50 {level.latency_p50_ms:7.3f}ms   p95 {level.latency_p95_ms:7.3f}ms   "
                f"p99 {level.latency_p99_ms:7.3f}ms"
            )
        return "\n".join(lines)


def _drive_level(
    url: str,
    oracle: Optional[str],
    queries: Sequence[Tuple[int, int]],
    concurrency: int,
    *,
    timeout: float,
    retries: int,
    backoff: float,
) -> WireSweepLevel:
    """Replay ``queries`` across ``concurrency`` client threads, one query per trip."""
    shards = [queries[offset::concurrency] for offset in range(concurrency)]
    shards = [shard for shard in shards if shard]
    per_thread_latencies: List[List[float]] = [[] for _ in shards]
    errors: List[BaseException] = []

    def run_client(index: int, shard: Sequence[Tuple[int, int]]) -> None:
        try:
            client = RemoteOracle(url, oracle=oracle, timeout=timeout,
                                  retries=retries, backoff=backoff)
            with client:
                sink = per_thread_latencies[index]
                for u, v in shard:
                    t0 = time.perf_counter()
                    client.query(u, v)
                    sink.append((time.perf_counter() - t0) * 1000.0)
        except BaseException as error:  # surfaced to the caller below
            errors.append(error)

    threads = [
        threading.Thread(target=run_client, args=(index, shard), daemon=True)
        for index, shard in enumerate(shards)
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    if errors:
        raise errors[0]
    latencies = sorted(latency for sink in per_thread_latencies for latency in sink)
    return WireSweepLevel(
        concurrency=concurrency,
        num_queries=len(latencies),
        elapsed_seconds=elapsed,
        throughput_qps=len(latencies) / max(elapsed, 1e-9),
        latency_mean_ms=sum(latencies) / len(latencies) if latencies else 0.0,
        latency_p50_ms=nearest_rank_percentile(latencies, 0.50),
        latency_p95_ms=nearest_rank_percentile(latencies, 0.95),
        latency_p99_ms=nearest_rank_percentile(latencies, 0.99),
    )


def run_wire_sweep(
    url: str,
    graph: Graph,
    *,
    oracle: Optional[str] = None,
    workload: str = "uniform",
    num_queries: int = 1000,
    seed: int = 0,
    concurrency: Sequence[int] = (1, 2, 4),
    stretch_sample: int = 100,
    per_level_seeds: bool = False,
    timeout: float = 10.0,
    retries: int = 3,
    backoff: float = 0.05,
    workload_options: Optional[Dict[str, Any]] = None,
) -> WireSweepReport:
    """Load-test a live daemon over the wire at several concurrency levels.

    Parameters
    ----------
    url:
        Daemon base URL (``http://host:port``).
    graph:
        The graph the daemon's oracle was built on — used to generate the
        query stream and for the exact-BFS stretch re-check.  Vertex-count
        agreement with the daemon is verified up front.
    oracle:
        Served oracle name (``None`` = the daemon's default).
    workload, num_queries, seed, workload_options:
        The seeded query stream, exactly as in the in-process harness.
    concurrency:
        Client-thread counts to sweep, each level replaying the stream.
    stretch_sample:
        Distinct stream pairs re-checked against exact BFS through the
        wire (0 skips the gate).
    per_level_seeds:
        Generate an independent stream per level (seed + level index)
        instead of replaying one stream.

    Raises
    ------
    RemoteOracleError
        If the daemon is unreachable after the transport retry budget.
    ValueError
        For empty/invalid concurrency lists or a graph whose vertex count
        disagrees with the daemon's oracle.
    """
    levels = [int(c) for c in concurrency]
    if not levels or any(c < 1 for c in levels):
        raise ValueError(f"concurrency levels must be positive ints, got {concurrency!r}")
    if stretch_sample < 0:
        raise ValueError(f"stretch_sample must be >= 0, got {stretch_sample}")
    probe = RemoteOracle(url, oracle=oracle, timeout=timeout, retries=retries,
                         backoff=backoff)
    if graph.num_vertices != probe.num_vertices:
        raise ValueError(
            f"local graph has {graph.num_vertices} vertices but the daemon's "
            f"{probe.oracle_name!r} oracle serves {probe.num_vertices}"
        )
    queries = generate_queries(graph, workload, num_queries, seed=seed,
                               **(workload_options or {}))
    measured: List[WireSweepLevel] = []
    with probe:
        for index, level in enumerate(levels):
            stream = queries
            if per_level_seeds and index:
                stream = generate_queries(graph, workload, num_queries,
                                          seed=seed + index,
                                          **(workload_options or {}))
            measured.append(
                _drive_level(url, oracle, stream, level, timeout=timeout,
                             retries=retries, backoff=backoff)
            )
        checked, violations, max_mult, max_additive = (0, 0, 1.0, 0.0)
        if stretch_sample:
            checked, violations, max_mult, max_additive = _check_stretch(
                graph, probe, queries, stretch_sample
            )
        daemon_stats = probe.daemon_stats()
        return WireSweepReport(
            url=probe.url,
            oracle=probe.oracle_name,
            backend=str(probe.stats().get("remote_backend", "unknown")),
            workload=workload,
            num_vertices=graph.num_vertices,
            space_in_edges=probe.space_in_edges,
            alpha=probe.alpha,
            beta=probe.beta,
            num_queries=len(queries),
            levels=measured,
            stretch_pairs_checked=checked,
            stretch_violations=violations,
            stretch_ok=violations == 0,
            max_multiplicative_stretch=max_mult,
            max_additive_error=max_additive,
            daemon_stats=daemon_stats,
        )
