"""The oracle backend registry of the serving layer.

Mirrors the builder registry (:mod:`repro.api.registry`): every distance
oracle backend registers itself under a name with the
:func:`register_oracle` decorator, and :func:`repro.serve.service.load`
looks backends up here.  The registry — not any hard-coded table — is the
source of truth for which backends exist, so alternative oracles (a
compressed oracle, a remote-shard client, a learned index) plug in without
touching the engine, the CLI, or the load harness.

A registered backend is a callable ``fn(graph, spec) -> DistanceOracle``
where ``spec`` is a :class:`~repro.serve.spec.ServeSpec`; the returned
object must satisfy the :class:`~repro.serve.oracles.DistanceOracle`
protocol.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List

__all__ = [
    "RegisteredOracle",
    "register_oracle",
    "get_oracle",
    "available_oracles",
    "buildable_oracles",
    "is_oracle_registered",
]


@dataclass(frozen=True)
class RegisteredOracle:
    """An oracle backend registered under a name."""

    name: str
    fn: Callable[..., Any]
    description: str = ""
    #: Whether the backend can be built from a graph alone.  ``False`` for
    #: backends needing external context via ``spec.options`` (the
    #: ``remote`` proxy needs a daemon URL); sweeps over "every backend"
    #: (E15, the guarantee test matrix) use :func:`buildable_oracles`.
    self_contained: bool = True


_REGISTRY: Dict[str, RegisteredOracle] = {}


def register_oracle(name: str, *, description: str = "",
                    self_contained: bool = True) -> Callable[..., Any]:
    """Class/function decorator registering an oracle backend under ``name``.

    Usage::

        @register_oracle("emulator", description="Dijkstra on the emulator")
        def _make(graph, spec):
            return EmulatorOracle(graph, spec)

    Pass ``self_contained=False`` for backends that cannot be built from a
    graph alone (e.g. the ``remote`` proxy, which needs a daemon URL in
    ``spec.options``); they are excluded from :func:`buildable_oracles`.

    Re-registering a name overwrites the previous entry (deliberate: test
    doubles and optimized drop-ins replace the stock backend).
    """
    if not name or not isinstance(name, str):
        raise ValueError(f"oracle backend name must be a non-empty string, got {name!r}")

    def decorator(fn: Callable[..., Any]) -> Callable[..., Any]:
        desc = description
        if not desc and fn.__doc__:
            desc = fn.__doc__.strip().splitlines()[0]
        _REGISTRY[name] = RegisteredOracle(name=name, fn=fn, description=desc,
                                           self_contained=self_contained)
        return fn

    return decorator


def get_oracle(name: str) -> RegisteredOracle:
    """Look up the oracle backend registered under ``name``.

    Raises
    ------
    KeyError
        If no backend is registered under ``name``.  The message lists
        every registered backend so callers can self-correct.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        names = ", ".join(available_oracles())
        raise KeyError(
            f"no oracle backend registered under {name!r}; registered backends: {names}"
        ) from None


def available_oracles() -> List[str]:
    """Sorted list of registered backend names."""
    return sorted(_REGISTRY)


def buildable_oracles() -> List[str]:
    """Sorted names of the backends buildable from a graph alone.

    Excludes proxies like ``remote`` that need external context (a daemon
    URL) in ``spec.options``.
    """
    return sorted(name for name, entry in _REGISTRY.items() if entry.self_contained)


def is_oracle_registered(name: str) -> bool:
    """Whether an oracle backend is registered under ``name``."""
    return name in _REGISTRY
