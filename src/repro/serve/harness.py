"""Workload-driven load harness: throughput, tail latency, observed stretch.

:func:`run_load_test` drives a query engine with a seeded workload stream
(:mod:`repro.serve.workloads`) and measures what a serving deployment is
judged on:

* **throughput** (queries per second over the whole stream),
* **tail latency** (p50 / p95 / p99 per-query milliseconds), and
* **observed vs. guaranteed stretch**: a sample of the stream's distinct
  pairs is re-checked against exact BFS distances — every answer must
  satisfy ``d_G(u, v) <= answer <= alpha * d_G(u, v) + beta`` for the
  backend's advertised ``(alpha, beta)``, and pairs in different
  components must answer ``inf``.

The result is a :class:`ServeReport`, a flat value object that
round-trips through JSON (``to_json`` / ``from_json``) so CI jobs and the
``bench-serve`` CLI can persist and diff reports.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.graphs.graph import Graph
from repro.graphs.shortest_paths import bfs_distances
# Re-exported: the latency-percentile convention lived here before it
# moved to repro.obs; importers keep working.
from repro.obs import latency_summary, nearest_rank_percentile
from repro.serve.service import load
from repro.serve.spec import ServeSpec
from repro.serve.workloads import generate_queries

__all__ = ["ServeReport", "run_load_test", "nearest_rank_percentile"]


@dataclass(frozen=True)
class ServeReport:
    """One load-test outcome; flat and JSON-round-trippable.

    Latencies are per-query milliseconds.  In multi-worker mode the
    stream is answered in shards via ``query_batch`` and per-query
    latency is the shard latency amortized over its queries — tail
    percentiles then describe shard behaviour, not single calls.
    """

    backend: str
    workload: str
    num_queries: int
    num_vertices: int
    space_in_edges: int
    alpha: float
    beta: float
    #: The *requested* batch mode: the stream is measured in sharded
    #: batches when > 1.  The engine may still answer serially (pool
    #: fallback, or batches with too few distinct sources) —
    #: ``engine_stats["parallel_batches"] == 0`` is the tell.
    workers: int
    build_seconds: float
    elapsed_seconds: float
    throughput_qps: float
    latency_mean_ms: float
    latency_p50_ms: float
    latency_p95_ms: float
    latency_p99_ms: float
    stretch_pairs_checked: int
    stretch_violations: int
    stretch_ok: bool
    max_multiplicative_stretch: float
    max_additive_error: float
    #: Engine statistics for the measured stream: the counter fields
    #: (queries, hits, misses, evictions, parallel batches) are deltas
    #: over the run — pre-existing traffic on a caller-provided engine
    #: and the stretch re-check are excluded — while gauges
    #: (``cached_sources``, limits, the backend's own stats) are the
    #: post-stream values.
    engine_stats: Dict[str, Any] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """The report as a plain dict of JSON scalars / dicts."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ServeReport":
        """Rebuild a report from :meth:`to_dict` output."""
        return cls(**data)

    def to_json(self, indent: int = 2) -> str:
        """The report as a JSON document."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ServeReport":
        """Parse a report previously produced by :meth:`to_json`."""
        return cls.from_dict(json.loads(text))

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.backend}/{self.workload}: {self.throughput_qps:.0f} q/s, "
            f"p50 {self.latency_p50_ms:.3f}ms, p99 {self.latency_p99_ms:.3f}ms, "
            f"stretch ok={self.stretch_ok} "
            f"(max x{self.max_multiplicative_stretch:.3f} +{self.max_additive_error:.1f})"
        )


def _measure_serial(engine, queries) -> Tuple[List[float], float]:
    """Per-query latencies (ms) and total wall seconds for a serial run."""
    latencies: List[float] = []
    start = time.perf_counter()
    for u, v in queries:
        t0 = time.perf_counter()
        engine.query(u, v)
        latencies.append((time.perf_counter() - t0) * 1000.0)
    return latencies, time.perf_counter() - start


def _measure_batched(engine, queries, workers: int) -> Tuple[List[float], float]:
    """Amortized per-query latencies (ms) and wall seconds for sharded batches."""
    shard_size = max(1, min(1024, len(queries) // max(1, 4 * workers) or 1))
    latencies: List[float] = []
    start = time.perf_counter()
    for begin in range(0, len(queries), shard_size):
        shard = queries[begin : begin + shard_size]
        t0 = time.perf_counter()
        engine.query_batch(shard, workers=workers)
        per_query = (time.perf_counter() - t0) * 1000.0 / len(shard)
        latencies.extend([per_query] * len(shard))
    return latencies, time.perf_counter() - start


def _check_stretch(
    graph: Graph, engine, queries, sample: int
) -> Tuple[int, int, float, float]:
    """Re-check up to ``sample`` distinct stream pairs against exact BFS.

    Returns ``(pairs_checked, violations, max_mult_stretch, max_additive)``.
    """
    distinct: List[Tuple[int, int]] = []
    seen = set()
    for u, v in queries:
        if len(distinct) >= sample:
            break
        if u == v or (u, v) in seen:
            continue
        seen.add((u, v))
        distinct.append((u, v))
    by_source: Dict[int, List[int]] = {}
    for u, v in distinct:
        by_source.setdefault(u, []).append(v)
    alpha, beta = engine.alpha, engine.beta
    violations = 0
    max_mult = 1.0
    max_additive = 0.0
    for source, targets in sorted(by_source.items()):
        exact = bfs_distances(graph, source)
        for target in targets:
            answer = engine.query(source, target)
            if target not in exact:
                # Different components: the sparse structure never
                # connects them, so a finite answer is a correctness bug.
                if answer != float("inf"):
                    violations += 1
                continue
            dg = float(exact[target])
            if answer < dg - 1e-9 or answer > alpha * dg + beta + 1e-9:
                violations += 1
            if dg > 0 and answer != float("inf"):
                max_mult = max(max_mult, answer / dg)
                max_additive = max(max_additive, answer - dg)
    return len(distinct), violations, max_mult, max_additive


def run_load_test(
    graph: Graph,
    spec: Optional[ServeSpec] = None,
    *,
    workload: str = "uniform",
    num_queries: int = 1000,
    seed: int = 0,
    workers: Optional[int] = None,
    stretch_sample: int = 100,
    engine=None,
    workload_options: Optional[Dict[str, Any]] = None,
) -> ServeReport:
    """Drive ``graph``'s oracle with a seeded workload and measure it.

    Parameters
    ----------
    graph:
        The unweighted input graph.
    spec:
        The :class:`ServeSpec` to load (ignored when ``engine`` is given);
        ``None`` means the default emulator stack.
    workload:
        Query-stream shape (see :mod:`repro.serve.workloads`).
    num_queries:
        Length of the stream.
    seed:
        Stream seed (the oracle build uses the spec's own seed).
    workers:
        ``> 1`` answers the stream in sharded batches on a process pool;
        ``None`` uses the spec's (or engine's) default.
    stretch_sample:
        How many distinct stream pairs to re-check against exact BFS.
    engine:
        A pre-loaded :class:`~repro.serve.engine.QueryEngine` to measure
        (its build time is then read from the backend stats).
    workload_options:
        Extra keyword arguments for the workload generator
        (e.g. ``{"radius": 2}`` for ``local``).
    """
    if stretch_sample < 0:
        raise ValueError(f"stretch_sample must be >= 0, got {stretch_sample}")
    if spec is None:
        spec = ServeSpec()
    own_engine = engine is None
    if own_engine:
        build_start = time.perf_counter()
        engine = load(graph, spec)
        build_seconds = time.perf_counter() - build_start
    else:
        oracle_stats = engine.stats().get("oracle", {})
        build_seconds = float(oracle_stats.get("build_seconds", 0.0))
    if workers is None:
        # A caller-provided engine carries its own default; the spec is
        # ignored for it (and may be the fallback ServeSpec()).
        workers = spec.workers if own_engine else engine.workers

    queries = generate_queries(graph, workload, num_queries, seed=seed,
                               **(workload_options or {}))
    try:
        counters_before = engine.stats()
        if workers > 1:
            latencies, elapsed = _measure_batched(engine, queries, workers)
        else:
            latencies, elapsed = _measure_serial(engine, queries)
        summary = latency_summary(latencies)
        # Counter deltas over the measured stream only: pre-stream traffic
        # on a caller-provided engine and the stretch re-check below are
        # both excluded.  Gauges (cached_sources, limits, oracle stats)
        # stay absolute.
        engine_stats = engine.stats_delta(counters_before)
        checked, violations, max_mult, max_additive = _check_stretch(
            graph, engine, queries, stretch_sample
        )
        return ServeReport(
            backend=getattr(engine.oracle, "name", engine.oracle.__class__.__name__),
            workload=workload,
            num_queries=len(queries),
            num_vertices=graph.num_vertices,
            space_in_edges=engine.space_in_edges,
            alpha=engine.alpha,
            beta=engine.beta,
            workers=workers,
            build_seconds=build_seconds,
            elapsed_seconds=elapsed,
            throughput_qps=len(queries) / max(elapsed, 1e-9),
            latency_mean_ms=summary.mean,
            latency_p50_ms=summary.p50,
            latency_p95_ms=summary.p95,
            latency_p99_ms=summary.p99,
            stretch_pairs_checked=checked,
            stretch_violations=violations,
            stretch_ok=violations == 0,
            max_multiplicative_stretch=max_mult,
            max_additive_error=max_additive,
            engine_stats=engine_stats,
        )
    finally:
        # A caller-provided engine keeps its pool for further batches;
        # the harness' own engine releases it with the run.
        if own_engine:
            engine.close()
