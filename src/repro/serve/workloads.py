"""Seeded query-stream generators for the serving layer.

A *query workload* is a finite stream of ``(u, v)`` pairs standing in for
the traffic a deployed distance oracle would see.  Four shapes are
provided, chosen to stress different parts of the engine:

``uniform``
    Independent uniform source/target pairs — the worst case for the
    per-source memo (no locality at all).
``zipf``
    Sources drawn from a Zipf-like rank distribution over a seed-shuffled
    vertex order, targets uniform — the classic skewed read traffic that
    the LRU memo is built for.
``local``
    Both endpoints close in the graph: a uniform source paired with a
    target from its BFS ball of radius ``radius`` — models geographically
    local queries (map/routing front ends).
``mixed``
    Read-mostly production shape: ``hot_fraction`` of the stream re-reads
    a small hot set of pairs (itself Zipf-source shaped), the rest is
    uniform background traffic.

Every generator is deterministic given ``(graph, num_queries, seed)``;
the load harness and the tests rely on replayable streams.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Tuple

from repro.graphs import kernels
from repro.graphs.graph import Graph
from repro.graphs.shortest_paths import bounded_bfs

__all__ = ["QUERY_WORKLOADS", "available_workloads", "generate_queries"]

Pair = Tuple[int, int]


def _random_pair(rng: random.Random, n: int) -> Pair:
    u = rng.randrange(n)
    v = rng.randrange(n)
    while v == u:
        v = rng.randrange(n)
    return u, v


def uniform_queries(graph: Graph, num_queries: int, seed: int = 0) -> List[Pair]:
    """Independent uniform pairs (``u != v``; repeats possible)."""
    n = graph.num_vertices
    _require_pairs(n)
    rng = random.Random(seed)
    return [_random_pair(rng, n) for _ in range(num_queries)]


def zipf_queries(
    graph: Graph, num_queries: int, seed: int = 0, *, exponent: float = 1.1
) -> List[Pair]:
    """Zipf-skewed sources (rank weights ``1 / rank^exponent``), uniform targets.

    The vertex-to-rank assignment is a seed-dependent shuffle, so which
    vertices are hot varies with the seed while the skew shape does not.
    """
    n = graph.num_vertices
    _require_pairs(n)
    if exponent <= 0:
        raise ValueError(f"exponent must be positive, got {exponent}")
    rng = random.Random(seed)
    by_rank = list(range(n))
    rng.shuffle(by_rank)
    weights = [1.0 / (rank + 1) ** exponent for rank in range(n)]
    sources = rng.choices(by_rank, weights=weights, k=num_queries)
    pairs: List[Pair] = []
    for u in sources:
        v = rng.randrange(n)
        while v == u:
            v = rng.randrange(n)
        pairs.append((u, v))
    return pairs


def local_queries(
    graph: Graph, num_queries: int, seed: int = 0, *, radius: int = 4
) -> List[Pair]:
    """Uniform sources paired with a target from their BFS ball of ``radius``.

    Isolated sources (empty ball) fall back to a uniform target, so the
    stream always has ``num_queries`` valid pairs even on disconnected
    graphs.

    Ball computation is batched: when the stream is long enough that most
    vertices will be drawn anyway, every ball is computed up front in
    chunked multi-source kernel passes (:func:`~repro.graphs.kernels
    .batched_bfs`) instead of one Python BFS per distinct source; short
    streams keep the lazy per-source path.  Both paths produce identical
    ball lists — targets are sampled *from the full ball*, so the
    Voronoi-style :func:`~repro.graphs.kernels.multi_source_attributed`
    assignment (which hands each vertex to a single source) cannot serve
    here — and the generated stream is byte-identical either way.
    """
    n = graph.num_vertices
    _require_pairs(n)
    if radius < 1:
        raise ValueError(f"radius must be at least 1, got {radius}")
    rng = random.Random(seed)
    balls: Dict[int, List[int]] = {}
    if 2 * num_queries >= n and not kernels.batching_disabled():
        explorations = kernels.batched_bfs(graph.csr(), range(n), radius)
        for u, dist in zip(range(n), explorations):
            balls[u] = [v for v in dist if v != u]
    pairs: List[Pair] = []
    for _ in range(num_queries):
        u = rng.randrange(n)
        ball = balls.get(u)
        if ball is None:
            ball = [v for v in bounded_bfs(graph, u, radius) if v != u]
            balls[u] = ball
        if ball:
            pairs.append((u, ball[rng.randrange(len(ball))]))
        else:
            pairs.append(_random_pair(rng, n))
    return pairs


def mixed_queries(
    graph: Graph,
    num_queries: int,
    seed: int = 0,
    *,
    hot_fraction: float = 0.9,
    hot_set_size: int = 32,
) -> List[Pair]:
    """Read-mostly mix: a small hot set re-read often, uniform background reads."""
    n = graph.num_vertices
    _require_pairs(n)
    if not (0.0 <= hot_fraction <= 1.0):
        raise ValueError(f"hot_fraction must lie in [0, 1], got {hot_fraction}")
    if hot_set_size < 1:
        raise ValueError(f"hot_set_size must be at least 1, got {hot_set_size}")
    rng = random.Random(seed)
    hot_set = zipf_queries(graph, hot_set_size, seed=seed + 1)
    pairs: List[Pair] = []
    for _ in range(num_queries):
        if rng.random() < hot_fraction:
            pairs.append(hot_set[rng.randrange(len(hot_set))])
        else:
            pairs.append(_random_pair(rng, n))
    return pairs


#: Workload name -> generator ``fn(graph, num_queries, seed, **options)``.
QUERY_WORKLOADS: Dict[str, Callable[..., List[Pair]]] = {
    "uniform": uniform_queries,
    "zipf": zipf_queries,
    "local": local_queries,
    "mixed": mixed_queries,
}


def available_workloads() -> List[str]:
    """Sorted list of query-workload names."""
    return sorted(QUERY_WORKLOADS)


def generate_queries(
    graph: Graph, workload: str, num_queries: int, seed: int = 0, **options
) -> List[Pair]:
    """Generate a seeded query stream of shape ``workload``.

    Raises ``ValueError`` for unknown workload names or graphs with fewer
    than two vertices (no pair to query).
    """
    if workload not in QUERY_WORKLOADS:
        raise ValueError(
            f"unknown query workload {workload!r}; choose from {available_workloads()}"
        )
    if num_queries < 0:
        raise ValueError(f"num_queries must be non-negative, got {num_queries}")
    return QUERY_WORKLOADS[workload](graph, num_queries, seed, **options)


def _require_pairs(n: int) -> None:
    if n < 2:
        raise ValueError(f"query workloads need at least 2 vertices, got {n}")
