"""Seeded query-stream generators for the serving layer.

A *query workload* is a finite stream of ``(u, v)`` pairs standing in for
the traffic a deployed distance oracle would see.  Four shapes are
provided, chosen to stress different parts of the engine:

``uniform``
    Independent uniform source/target pairs — the worst case for the
    per-source memo (no locality at all).
``zipf``
    Sources drawn from a Zipf-like rank distribution over a seed-shuffled
    vertex order, targets uniform — the classic skewed read traffic that
    the LRU memo is built for.
``local``
    Both endpoints close in the graph: a uniform source paired with a
    target from its BFS ball of radius ``radius`` — models geographically
    local queries (map/routing front ends).
``mixed``
    Read-mostly production shape: ``hot_fraction`` of the stream re-reads
    a small hot set of pairs (itself Zipf-source shaped), the rest is
    uniform background traffic.

Every generator is deterministic given ``(graph, num_queries, seed)``;
the load harness and the tests rely on replayable streams.

A query stream can also be *profiled*: :func:`profile` reduces it to a
per-source frequency :class:`WorkloadProfile` that round-trips through
JSON (``save`` / ``load``).  Profiles are how traffic knowledge travels
between processes — the serving daemon (:mod:`repro.serve.daemon`)
preloads its engines from a saved profile at startup, and an in-process
:class:`~repro.serve.engine.QueryEngine` pre-warms the same way via
``engine.prewarm(profile.top_sources(k))``.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.graphs import kernels
from repro.graphs.graph import Graph
from repro.graphs.shortest_paths import bounded_bfs

__all__ = [
    "QUERY_WORKLOADS",
    "WorkloadProfile",
    "available_workloads",
    "generate_queries",
    "profile",
]

Pair = Tuple[int, int]


def _random_pair(rng: random.Random, n: int) -> Pair:
    u = rng.randrange(n)
    v = rng.randrange(n)
    while v == u:
        v = rng.randrange(n)
    return u, v


def uniform_queries(graph: Graph, num_queries: int, seed: int = 0) -> List[Pair]:
    """Independent uniform pairs (``u != v``; repeats possible)."""
    n = graph.num_vertices
    _require_pairs(n)
    rng = random.Random(seed)
    return [_random_pair(rng, n) for _ in range(num_queries)]


def zipf_queries(
    graph: Graph, num_queries: int, seed: int = 0, *, exponent: float = 1.1
) -> List[Pair]:
    """Zipf-skewed sources (rank weights ``1 / rank^exponent``), uniform targets.

    The vertex-to-rank assignment is a seed-dependent shuffle, so which
    vertices are hot varies with the seed while the skew shape does not.
    """
    n = graph.num_vertices
    _require_pairs(n)
    if exponent <= 0:
        raise ValueError(f"exponent must be positive, got {exponent}")
    rng = random.Random(seed)
    by_rank = list(range(n))
    rng.shuffle(by_rank)
    weights = [1.0 / (rank + 1) ** exponent for rank in range(n)]
    sources = rng.choices(by_rank, weights=weights, k=num_queries)
    pairs: List[Pair] = []
    for u in sources:
        v = rng.randrange(n)
        while v == u:
            v = rng.randrange(n)
        pairs.append((u, v))
    return pairs


def local_queries(
    graph: Graph, num_queries: int, seed: int = 0, *, radius: int = 4
) -> List[Pair]:
    """Uniform sources paired with a target from their BFS ball of ``radius``.

    Isolated sources (empty ball) fall back to a uniform target, so the
    stream always has ``num_queries`` valid pairs even on disconnected
    graphs.

    Ball computation is batched: when the stream is long enough that most
    vertices will be drawn anyway, every ball is computed up front in
    chunked multi-source kernel passes (:func:`~repro.graphs.kernels
    .batched_bfs`) instead of one Python BFS per distinct source; short
    streams keep the lazy per-source path.  Both paths produce identical
    ball lists — targets are sampled *from the full ball*, so the
    Voronoi-style :func:`~repro.graphs.kernels.multi_source_attributed`
    assignment (which hands each vertex to a single source) cannot serve
    here — and the generated stream is byte-identical either way.
    """
    n = graph.num_vertices
    _require_pairs(n)
    if radius < 1:
        raise ValueError(f"radius must be at least 1, got {radius}")
    rng = random.Random(seed)
    balls: Dict[int, List[int]] = {}
    if 2 * num_queries >= n and not kernels.batching_disabled():
        explorations = kernels.batched_bfs(graph.csr(), range(n), radius)
        for u, dist in zip(range(n), explorations):
            balls[u] = [v for v in dist if v != u]
    pairs: List[Pair] = []
    for _ in range(num_queries):
        u = rng.randrange(n)
        ball = balls.get(u)
        if ball is None:
            ball = [v for v in bounded_bfs(graph, u, radius) if v != u]
            balls[u] = ball
        if ball:
            pairs.append((u, ball[rng.randrange(len(ball))]))
        else:
            pairs.append(_random_pair(rng, n))
    return pairs


def mixed_queries(
    graph: Graph,
    num_queries: int,
    seed: int = 0,
    *,
    hot_fraction: float = 0.9,
    hot_set_size: int = 32,
) -> List[Pair]:
    """Read-mostly mix: a small hot set re-read often, uniform background reads."""
    n = graph.num_vertices
    _require_pairs(n)
    if not (0.0 <= hot_fraction <= 1.0):
        raise ValueError(f"hot_fraction must lie in [0, 1], got {hot_fraction}")
    if hot_set_size < 1:
        raise ValueError(f"hot_set_size must be at least 1, got {hot_set_size}")
    rng = random.Random(seed)
    hot_set = zipf_queries(graph, hot_set_size, seed=seed + 1)
    pairs: List[Pair] = []
    for _ in range(num_queries):
        if rng.random() < hot_fraction:
            pairs.append(hot_set[rng.randrange(len(hot_set))])
        else:
            pairs.append(_random_pair(rng, n))
    return pairs


#: Workload name -> generator ``fn(graph, num_queries, seed, **options)``.
QUERY_WORKLOADS: Dict[str, Callable[..., List[Pair]]] = {
    "uniform": uniform_queries,
    "zipf": zipf_queries,
    "local": local_queries,
    "mixed": mixed_queries,
}


def available_workloads() -> List[str]:
    """Sorted list of query-workload names."""
    return sorted(QUERY_WORKLOADS)


def generate_queries(
    graph: Graph, workload: str, num_queries: int, seed: int = 0, **options
) -> List[Pair]:
    """Generate a seeded query stream of shape ``workload``.

    Raises ``ValueError`` for unknown workload names or graphs with fewer
    than two vertices (no pair to query).
    """
    if workload not in QUERY_WORKLOADS:
        raise ValueError(
            f"unknown query workload {workload!r}; choose from {available_workloads()}"
        )
    if num_queries < 0:
        raise ValueError(f"num_queries must be non-negative, got {num_queries}")
    return QUERY_WORKLOADS[workload](graph, num_queries, seed, **options)


def _require_pairs(n: int) -> None:
    if n < 2:
        raise ValueError(f"query workloads need at least 2 vertices, got {n}")


# ----------------------------------------------------------------------
# Workload profiles
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WorkloadProfile:
    """Per-source frequency summary of a query stream; JSON-round-trippable.

    ``counts`` maps each source vertex to how often it appeared on the
    query side of a stream; ``total_queries`` is the stream length the
    profile was taken from.  The hot-source order (:meth:`top_sources`) is
    deterministic: descending frequency, ties broken toward the smaller
    vertex id — so a profile saved by one process warms another process'
    engine identically every time.
    """

    counts: Mapping[int, int]
    total_queries: int

    def __post_init__(self) -> None:
        counts = {}
        for source, count in dict(self.counts).items():
            source, count = int(source), int(count)
            if count < 0:
                raise ValueError(f"negative count {count} for source {source}")
            if count:
                counts[source] = count
        object.__setattr__(self, "counts", counts)
        if self.total_queries < 0:
            raise ValueError(f"total_queries must be non-negative, got {self.total_queries}")

    def __len__(self) -> int:
        return len(self.counts)

    def top_sources(self, k: Optional[int] = None) -> List[int]:
        """The ``k`` hottest sources (all, if ``k`` is ``None``), hottest first."""
        if k is not None and k < 0:
            raise ValueError(f"k must be non-negative, got {k}")
        ranked = sorted(self.counts, key=lambda source: (-self.counts[source], source))
        return ranked if k is None else ranked[:k]

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """The profile as a plain dict of JSON scalars (string source keys)."""
        return {
            "total_queries": self.total_queries,
            "counts": {str(source): count for source, count in sorted(self.counts.items())},
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "WorkloadProfile":
        """Rebuild a profile from :meth:`to_dict` output."""
        counts = data.get("counts", {})
        if not isinstance(counts, Mapping):
            raise ValueError("profile 'counts' must be a mapping")
        return cls(
            counts={int(source): int(count) for source, count in counts.items()},
            total_queries=int(data.get("total_queries", 0)),
        )

    def to_json(self, indent: int = 2) -> str:
        """The profile as a JSON document."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "WorkloadProfile":
        """Parse a profile previously produced by :meth:`to_json`."""
        return cls.from_dict(json.loads(text))

    def save(self, path: str) -> None:
        """Write the profile to ``path`` as JSON."""
        with open(path, "w") as handle:
            handle.write(self.to_json() + "\n")

    @classmethod
    def load(cls, path: str) -> "WorkloadProfile":
        """Read a profile previously written by :meth:`save`."""
        with open(path) as handle:
            return cls.from_json(handle.read())


def profile(queries: Iterable[Pair]) -> WorkloadProfile:
    """Profile a query stream into per-source frequencies.

    Only the source side is counted — the serving layer's memo, warm-up,
    and admission coalescing are all keyed on sources, so that is the
    dimension worth shipping between processes.
    """
    counts: Dict[int, int] = {}
    total = 0
    for u, _v in queries:
        total += 1
        counts[u] = counts.get(u, 0) + 1
    return WorkloadProfile(counts=counts, total_queries=total)
