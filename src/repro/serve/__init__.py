"""Production query serving: oracle registry, query engine, load harness.

The build layer (:mod:`repro.api`) stops at *construction*; this
subsystem is the missing half of the paper's oracle application story —
it loads a built product and serves approximate distance queries under
load::

    from repro import Graph
    from repro.serve import ServeSpec, load

    engine = load(graph, ServeSpec(product="emulator", method="fast"))
    engine.query(0, 17)                      # single pair
    engine.query_batch(pairs, workers=4)     # sharded across processes
    engine.stats()                           # hits / misses / evictions

Pieces
------
:class:`ServeSpec`
    Frozen serving configuration: the backing ``product`` × ``method`` ×
    parameters, the oracle ``backend``, and engine knobs.
:func:`register_oracle` / :func:`get_oracle` / :func:`available_oracles`
    The oracle backend registry (mirrors the builder registry); stock
    backends are ``emulator``, ``spanner``, ``hopset`` and ``exact``.
:class:`DistanceOracle`
    The protocol every backend and the engine satisfy: ``query`` /
    ``query_batch`` / ``single_source`` / ``stats`` + ``alpha`` / ``beta``.
:class:`QueryEngine`
    Bounded per-source LRU memoization, source-grouped batches, and a
    multi-worker mode sharding batches across a process pool.
:func:`load`
    The entry point: ``ServeSpec`` -> preprocessed, query-ready engine.
:func:`generate_queries` + :func:`run_load_test` / :class:`ServeReport`
    Seeded query workloads (uniform / zipf / local / mixed) and the load
    harness measuring throughput, p50/p95/p99 latency and observed vs.
    guaranteed stretch into a JSON-round-trippable report.
:class:`OracleDaemon` / :class:`RemoteOracle` / :func:`run_wire_sweep`
    The client/server half (:mod:`repro.serve.daemon`,
    :mod:`repro.serve.remote`, :mod:`repro.serve.wire`): a persistent
    HTTP daemon serving named oracles with admission coalescing and
    profile-driven warm-up, the ``remote`` proxy backend that shares one
    daemon-built oracle across processes, and the wire-level
    client-concurrency load sweep::

        daemon = OracleDaemon(port=0)
        daemon.add_oracle("default", graph, ServeSpec())
        daemon.start()
        remote = serve.load(graph, ServeSpec(backend="remote",
                                             options={"url": daemon.url}))
        remote.query(0, 17)                  # answered by the daemon

:class:`LiveEngine` / :class:`GraphMutation` / :func:`run_churn_sweep`
    Live serving (:mod:`repro.serve.live`): a mutable engine that applies
    edge insertions/deletions immediately, rebuilds the oracle in a
    background thread, hot-swaps it atomically, and tags every answer
    with ``(version, staleness)``; ``ServeSpec(live=True)`` routes
    :func:`load` to it, the daemon serves it with ``POST /mutate``, and
    the churn sweep drives a live daemon with concurrent queries and
    mutations while checking every tagged answer against the graph
    version it was computed on::

        engine = serve.load(graph, ServeSpec(live=True))
        engine.mutate(deletes=[(0, 17)])     # applied immediately
        engine.query_tagged(0, 17)           # (value, version, staleness, ...)
"""

from repro.serve.spec import ServeSpec
from repro.serve.registry import (
    RegisteredOracle,
    available_oracles,
    buildable_oracles,
    get_oracle,
    is_oracle_registered,
    register_oracle,
)
from repro.serve.oracles import (
    DistanceOracle,
    EmulatorOracle,
    ExactOracle,
    HopsetOracle,
    OracleBackend,
    SpannerOracle,
)
from repro.serve.engine import QueryEngine
from repro.serve.service import load
from repro.serve.workloads import (
    QUERY_WORKLOADS,
    WorkloadProfile,
    available_workloads,
    generate_queries,
    profile,
)
from repro.serve.harness import ServeReport, nearest_rank_percentile, run_load_test
from repro.serve.daemon import (
    CoalescingEngine,
    DaemonConfig,
    OracleConfig,
    OracleDaemon,
)
from repro.serve.remote import RemoteOracle, RemoteOracleError
from repro.serve.live import (
    GraphMutation,
    LiveAnswer,
    LiveEngine,
    MutationReceipt,
    OracleVersion,
)
from repro.serve.wire import (
    ChurnLevel,
    ChurnSweepReport,
    WireSweepLevel,
    WireSweepReport,
    run_churn_sweep,
    run_wire_sweep,
)

__all__ = [
    "ServeSpec",
    "RegisteredOracle",
    "register_oracle",
    "get_oracle",
    "available_oracles",
    "buildable_oracles",
    "is_oracle_registered",
    "DistanceOracle",
    "OracleBackend",
    "EmulatorOracle",
    "SpannerOracle",
    "HopsetOracle",
    "ExactOracle",
    "QueryEngine",
    "load",
    "QUERY_WORKLOADS",
    "WorkloadProfile",
    "available_workloads",
    "generate_queries",
    "profile",
    "ServeReport",
    "nearest_rank_percentile",
    "run_load_test",
    "CoalescingEngine",
    "DaemonConfig",
    "OracleConfig",
    "OracleDaemon",
    "RemoteOracle",
    "RemoteOracleError",
    "GraphMutation",
    "OracleVersion",
    "LiveAnswer",
    "MutationReceipt",
    "LiveEngine",
    "WireSweepLevel",
    "WireSweepReport",
    "run_wire_sweep",
    "ChurnLevel",
    "ChurnSweepReport",
    "run_churn_sweep",
]
