"""Ultra-Sparse Near-Additive Emulators — reference implementation.

A reproduction of *"Ultra-Sparse Near-Additive Emulators"* (Michael Elkin and
Shaked Matar, PODC 2021).  The package provides:

* the paper's centralized construction of ``(1 + eps, beta)``-emulators with
  at most ``n^(1 + 1/kappa)`` edges (:func:`repro.build_emulator`);
* the fast, ruling-set based centralized construction of Section 3.3
  (:func:`repro.build_emulator_fast`);
* the distributed CONGEST construction of Section 3, executed on a
  synchronous network simulator (:func:`repro.build_emulator_congest`);
* the near-additive *spanner* construction of Section 4
  (:func:`repro.build_near_additive_spanner`,
  :func:`repro.build_spanner_congest`);
* baselines (EP01, TZ06, EN17a, EM19, greedy multiplicative spanners),
  validators, metrics, and the experiment/benchmark harness.
"""

from repro.graphs import Graph, WeightedGraph, generators
from repro.core import (
    CentralizedSchedule,
    DistributedSchedule,
    SpannerSchedule,
    build_emulator,
    build_emulator_fast,
    build_near_additive_spanner,
    size_bound,
)
from repro.core.parameters import ultra_sparse_kappa
from repro.distributed import build_emulator_congest, build_spanner_congest
from repro.analysis import verify_emulator, verify_spanner
from repro.hopsets import build_hopset, verify_hopset

__version__ = "1.1.0"

__all__ = [
    "Graph",
    "WeightedGraph",
    "generators",
    "CentralizedSchedule",
    "DistributedSchedule",
    "SpannerSchedule",
    "size_bound",
    "ultra_sparse_kappa",
    "build_emulator",
    "build_emulator_fast",
    "build_emulator_congest",
    "build_near_additive_spanner",
    "build_spanner_congest",
    "verify_emulator",
    "verify_spanner",
    "build_hopset",
    "verify_hopset",
    "__version__",
]
