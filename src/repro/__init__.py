"""Ultra-Sparse Near-Additive Emulators — reference implementation.

A reproduction of *"Ultra-Sparse Near-Additive Emulators"* (Michael Elkin and
Shaked Matar, PODC 2021).  The package provides:

* the paper's centralized construction of ``(1 + eps, beta)``-emulators with
  at most ``n^(1 + 1/kappa)`` edges (:func:`repro.build_emulator`);
* the fast, ruling-set based centralized construction of Section 3.3
  (:func:`repro.build_emulator_fast`);
* the distributed CONGEST construction of Section 3, executed on a
  synchronous network simulator (:func:`repro.build_emulator_congest`);
* the near-additive *spanner* construction of Section 4
  (:func:`repro.build_near_additive_spanner`,
  :func:`repro.build_spanner_congest`);
* baselines (EP01, TZ06, EN17a, EM19, greedy multiplicative spanners),
  validators, metrics, and the experiment/benchmark harness.

All constructions are reachable through the unified facade::

    from repro import Graph, BuildSpec, build

    result = build(graph, BuildSpec(product="emulator", method="fast"))
    result.verify(graph, sample_pairs=500)

and every built product can be served as an approximate distance oracle
through the serving layer (:mod:`repro.serve`)::

    from repro import ServeSpec, serve

    engine = serve.load(graph, ServeSpec(product="emulator"))
    engine.query(0, 17)

The per-construction ``build_*`` functions remain as deprecated shims.
"""

from repro.graphs import Graph, WeightedGraph, generators
from repro.core import (
    CentralizedSchedule,
    DistributedSchedule,
    SpannerSchedule,
    build_emulator,
    build_emulator_fast,
    build_near_additive_spanner,
    size_bound,
)
from repro.core.parameters import ultra_sparse_kappa
from repro.distributed import build_emulator_congest, build_spanner_congest
from repro.analysis import verify_emulator, verify_spanner
from repro.hopsets import build_hopset, verify_hopset
from repro.api import (
    METHODS,
    PRODUCTS,
    BuildEvent,
    BuildResult,
    BuildResultAdapter,
    BuildSpec,
    GridSweep,
    available_builders,
    build,
    get_builder,
    on_build,
    register_builder,
    run_sweep,
)
from repro import serve
from repro.serve import DistanceOracle, QueryEngine, ServeSpec

__version__ = "1.10.0"

__all__ = [
    "Graph",
    "WeightedGraph",
    "generators",
    "CentralizedSchedule",
    "DistributedSchedule",
    "SpannerSchedule",
    "size_bound",
    "ultra_sparse_kappa",
    # unified facade
    "PRODUCTS",
    "METHODS",
    "BuildSpec",
    "BuildResult",
    "BuildResultAdapter",
    "BuildEvent",
    "GridSweep",
    "build",
    "run_sweep",
    "register_builder",
    "get_builder",
    "available_builders",
    "on_build",
    # the query-serving layer
    "serve",
    "ServeSpec",
    "DistanceOracle",
    "QueryEngine",
    # deprecated per-construction entry points
    "build_emulator",
    "build_emulator_fast",
    "build_emulator_congest",
    "build_near_additive_spanner",
    "build_spanner_congest",
    "verify_emulator",
    "verify_spanner",
    "build_hopset",
    "verify_hopset",
    "__version__",
]
