"""Hopsets derived from near-additive emulators.

The paper's introduction highlights the tight connection between
near-additive emulators and *hopsets* discovered in [EN16a, EN17a, HP17]:
the edge set of a near-additive emulator, when added to the graph, lets
hop-limited shortest-path computations (the workhorse of parallel,
distributed and dynamic SSSP algorithms) reach near-exact distances using
only a small number of hops.

This package provides:

* :mod:`repro.hopsets.bounded_hop` — hop-limited distance computations on
  weighted graphs (the ``d^{(t)}`` semantics hopsets are defined with) and
  the graph ∪ hopset union helper.
* :mod:`repro.hopsets.hopset` — construction of ``(beta, eps)``-hopsets from
  the emulator machinery, verification, and measurement of the effective
  hopbound.
"""

from repro.hopsets.bounded_hop import (
    hop_limited_distances,
    hop_limited_distance,
    union_with_graph,
)
from repro.hopsets.hopset import (
    HopsetResult,
    build_hopset,
    measured_hopbound,
    verify_hopset,
)

__all__ = [
    "hop_limited_distances",
    "hop_limited_distance",
    "union_with_graph",
    "HopsetResult",
    "build_hopset",
    "measured_hopbound",
    "verify_hopset",
]
