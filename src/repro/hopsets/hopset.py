"""Construction and verification of near-exact hopsets.

The connection exploited here is the one the paper's introduction (and the
survey [EN20]) describes: the *edge set of a near-additive emulator is a
near-exact hopset*.  Concretely, if ``H`` is a ``(1 + eps, beta)``-emulator
of an unweighted graph ``G`` built by the superclustering-and-interconnection
scheme, then for every pair ``u, v`` the emulator contains a ``u``–``v`` path
of weight at most ``(1 + eps) d_G(u, v) + beta`` using few edges (one edge
per path segment of the stretch analysis), so adding ``H`` to ``G`` lets a
hop-limited search recover near-exact distances.

We expose the hopset as its own result object so downstream code (parallel /
dynamic SSSP-style pipelines) does not need to know about emulators at all,
and we *measure* the effective hopbound rather than trusting the analysis:
:func:`measured_hopbound` finds the smallest hop budget for which the
``(alpha, beta)`` guarantee empirically holds on the checked pairs.
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.analysis.sampling import sample_vertex_pairs
from repro.core.emulator import EmulatorResult
from repro.core.parameters import CentralizedSchedule
from repro.graphs.graph import Graph
from repro.graphs.shortest_paths import bfs_distances
from repro.graphs.weighted_graph import WeightedGraph
from repro.hopsets.bounded_hop import hop_limited_distances, union_with_graph

__all__ = [
    "HopsetResult",
    "build_hopset",
    "measured_hopbound",
    "exact_hopbound",
    "verify_hopset",
]


@dataclass
class HopsetResult:
    """A constructed hopset together with its provenance and guarantees.

    Attributes
    ----------
    hopset:
        The weighted hopset edge set ``H`` (weights are graph distances).
    alpha, beta:
        The near-additive guarantee inherited from the emulator: every
        hop-limited distance through ``G ∪ H`` is at most
        ``alpha * d_G + beta`` once the hop budget is large enough.
    hopbound_estimate:
        An a-priori estimate of the sufficient hop budget, derived from the
        emulator schedule (see :func:`build_hopset`).
    emulator_result:
        The emulator construction this hopset was derived from.
    """

    hopset: WeightedGraph
    alpha: float
    beta: float
    hopbound_estimate: int
    emulator_result: EmulatorResult

    @property
    def num_edges(self) -> int:
        """Number of hopset edges."""
        return self.hopset.num_edges

    @property
    def num_vertices(self) -> int:
        """Number of vertices of the underlying graph."""
        return self.hopset.num_vertices

    def union(self, graph: Graph) -> WeightedGraph:
        """The weighted union ``G ∪ H`` hop-limited queries run on."""
        return union_with_graph(graph, self.hopset)


def _hopbound_estimate(schedule: CentralizedSchedule) -> int:
    """Sufficient hop budget implied by the emulator's segment decomposition.

    The stretch proof (Lemma 2.10) splits a shortest path into segments of
    length ``(1/eps)^ell`` and replaces each segment by a constant number of
    emulator edges plus two recursive endpoints.  Resolving the recursion
    gives ``O(beta / eps)`` hops in the worst case; we report the
    (deliberately generous) bound ``ceil(beta + 1/eps + ell)`` which the
    experiments show is far above the measured hopbound.
    """
    return int(math.ceil(schedule.beta + 1.0 / schedule.eps + schedule.ell)) + 1


def build_hopset(
    graph: Graph,
    eps: float = 0.1,
    kappa: Optional[float] = None,
    schedule: Optional[CentralizedSchedule] = None,
) -> HopsetResult:
    """Build a near-exact hopset for ``graph`` from an ultra-sparse emulator.

    Parameters
    ----------
    graph:
        The unweighted input graph ``G``.
    eps:
        Working epsilon of the emulator schedule.
    kappa:
        Sparsity parameter; ``None`` selects the ultra-sparse regime, so the
        hopset has ``n + o(n)`` edges.
    schedule:
        Optional pre-built schedule overriding ``eps`` / ``kappa``.

    Returns
    -------
    HopsetResult
        The hopset (= the emulator's edge set), its inherited ``(alpha,
        beta)`` guarantee and an a-priori hopbound estimate.

    .. deprecated:: 1.2.0
        Use ``repro.build(graph, BuildSpec(product="hopset",
        method="centralized", ...))`` instead.
    """
    warnings.warn(
        "build_hopset() is deprecated; use repro.build(graph, "
        "BuildSpec(product='hopset', method='centralized', ...))",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.api import BuildSpec, build

    return build(
        graph,
        BuildSpec(product="hopset", method="centralized", eps=eps, kappa=kappa,
                  schedule=schedule),
    ).raw


def _pairs_by_source(
    graph: Graph, sample_pairs: Optional[int], seed: int
) -> Dict[int, List[int]]:
    """Group the checked pairs by source vertex."""
    n = graph.num_vertices
    if sample_pairs is None:
        pairs = [(u, v) for u in range(n) for v in range(u + 1, n)]
    else:
        pairs = sample_vertex_pairs(graph, sample_pairs, seed=seed)
    by_source: Dict[int, List[int]] = {}
    for u, v in pairs:
        by_source.setdefault(u, []).append(v)
    return by_source


def verify_hopset(
    graph: Graph,
    hopset: WeightedGraph,
    hopbound: int,
    alpha: float,
    beta: float,
    sample_pairs: Optional[int] = None,
    seed: int = 0,
    graph_distances: Optional[Callable[[int], Dict[int, int]]] = None,
) -> Tuple[bool, float]:
    """Check the ``(hopbound, alpha, beta)`` hopset guarantee.

    Returns ``(valid, worst_excess)`` where ``valid`` states whether every
    checked pair satisfies ``d^{(hopbound)}_{G ∪ H} <= alpha d_G + beta`` and
    ``worst_excess`` is the largest observed ``d^{(hopbound)} - (alpha d_G +
    beta)`` (non-positive when valid).  Hop-limited distances are also
    checked never to undershoot ``d_G``.  ``graph_distances`` optionally
    replaces the per-source BFS (see :func:`verify_emulator`'s parameter
    of the same name).
    """
    if graph_distances is None:
        graph_distances = lambda source: bfs_distances(graph, source)  # noqa: E731
    union = union_with_graph(graph, hopset)
    worst_excess = float("-inf")
    valid = True
    for source, targets in sorted(_pairs_by_source(graph, sample_pairs, seed).items()):
        d_g = graph_distances(source)
        d_t = hop_limited_distances(union, source, hopbound)
        for target in targets:
            if target not in d_g:
                continue
            dg = float(d_g[target])
            dt = d_t.get(target, float("inf"))
            if dt < dg - 1e-9:
                raise AssertionError(
                    f"hop-limited distance {dt} undershoots graph distance {dg} "
                    f"for pair ({source}, {target})"
                )
            excess = dt - (alpha * dg + beta)
            worst_excess = max(worst_excess, excess)
            if excess > 1e-9:
                valid = False
    return valid, worst_excess


def measured_hopbound(
    graph: Graph,
    hopset: WeightedGraph,
    alpha: float,
    beta: float,
    sample_pairs: Optional[int] = 200,
    seed: int = 0,
    max_hopbound: Optional[int] = None,
) -> int:
    """Smallest hop budget for which the ``(alpha, beta)`` guarantee holds.

    Performs a linear scan of hop budgets ``1, 2, ...`` (each check reuses a
    single hop-limited sweep per source), stopping at the first budget for
    which every checked pair satisfies the guarantee.  Returns
    ``max_hopbound + 1`` if no budget up to ``max_hopbound`` suffices (the
    caller can treat that as "guarantee not met").

    This is the quantity experiment E10 tabulates against the paper-derived
    estimate: the measured hopbound is typically a small constant even when
    the analysis only promises ``O(beta / eps)``.
    """
    if max_hopbound is None:
        max_hopbound = max(4, graph.num_vertices)
    by_source = _pairs_by_source(graph, sample_pairs, seed)
    union = union_with_graph(graph, hopset)
    d_g_cache: Dict[int, Dict[int, int]] = {
        source: bfs_distances(graph, source) for source in by_source
    }
    for hopbound in range(1, max_hopbound + 1):
        ok = True
        for source, targets in sorted(by_source.items()):
            d_g = d_g_cache[source]
            d_t = hop_limited_distances(union, source, hopbound)
            for target in targets:
                if target not in d_g:
                    continue
                dg = float(d_g[target])
                dt = d_t.get(target, float("inf"))
                if dt > alpha * dg + beta + 1e-9:
                    ok = False
                    break
            if not ok:
                break
        if ok:
            return hopbound
    return max_hopbound + 1


def exact_hopbound(
    graph: Graph,
    hopset: WeightedGraph,
    sample_pairs: Optional[int] = 200,
    seed: int = 0,
    max_hopbound: Optional[int] = None,
) -> int:
    """Smallest hop budget realizing the full ``G ∪ H`` distance on every pair.

    For ultra-sparse parameters the emulator's worst-case ``beta`` dwarfs any
    distance in a test graph, which makes the guarantee-based
    :func:`measured_hopbound` nearly vacuous.  This stricter measure asks for
    the smallest ``t`` such that the ``t``-hop-limited distance already
    *equals* the unlimited-hop distance through ``G ∪ H`` for every checked
    pair — the "hop diameter" reduction the hopset buys, which is the number
    a parallel / distributed SSSP pipeline actually cares about.
    """
    if max_hopbound is None:
        max_hopbound = max(4, graph.num_vertices)
    by_source = _pairs_by_source(graph, sample_pairs, seed)
    union = union_with_graph(graph, hopset)
    exact_cache: Dict[int, Dict[int, float]] = {
        source: union.dijkstra(source) for source in by_source
    }
    for hopbound in range(1, max_hopbound + 1):
        ok = True
        for source, targets in sorted(by_source.items()):
            exact = exact_cache[source]
            limited = hop_limited_distances(union, source, hopbound)
            for target in targets:
                if target not in exact:
                    continue
                if limited.get(target, float("inf")) > exact[target] + 1e-9:
                    ok = False
                    break
            if not ok:
                break
        if ok:
            return hopbound
    return max_hopbound + 1
