"""Hop-limited shortest-path distances on weighted graphs.

A ``(beta, eps)``-hopset ``H`` for a graph ``G`` guarantees that for every
pair of vertices ``u, v``::

    d^{(beta)}_{G ∪ H}(u, v) <= (1 + eps) * d_G(u, v)

where ``d^{(t)}`` denotes the minimum weight of a path using at most ``t``
edges ("hops").  This module provides the ``d^{(t)}`` machinery: a
Bellman–Ford style hop-limited single-source computation, a single-pair
convenience wrapper, and the ``G ∪ H`` union helper that overlays the
(unit-weight) input graph with the weighted hopset / emulator edges.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.graphs import kernels
from repro.graphs.graph import Graph
from repro.graphs.weighted_graph import WeightedGraph

__all__ = ["union_with_graph", "hop_limited_distances", "hop_limited_distance"]


def union_with_graph(graph: Graph, overlay: Optional[WeightedGraph] = None) -> WeightedGraph:
    """Overlay ``graph`` (unit weights) with the weighted edges of ``overlay``.

    The result is the weighted graph ``G ∪ H`` on which hop-limited distances
    are evaluated.  Where both contain an edge, the smaller weight wins
    (``WeightedGraph.add_edge`` keeps the minimum), which can only help the
    hop-limited distances and never breaks the lower bound because hopset
    edge weights are themselves at least the graph distance.

    Parameters
    ----------
    graph:
        The unweighted input graph ``G``.
    overlay:
        The hopset / emulator edge set ``H``; ``None`` yields a unit-weight
        copy of ``G``.
    """
    if overlay is not None and overlay.num_vertices != graph.num_vertices:
        raise ValueError(
            f"overlay has {overlay.num_vertices} vertices but graph has {graph.num_vertices}"
        )
    union = WeightedGraph(graph.num_vertices)
    for u, v in graph.edges():
        union.add_edge(u, v, 1.0)
    if overlay is not None:
        for u, v, w in overlay.edges():
            union.add_edge(u, v, w)
    return union


def hop_limited_distances(
    weighted: WeightedGraph, source: int, max_hops: int
) -> Dict[int, float]:
    """Single-source distances using paths of at most ``max_hops`` edges.

    This is the textbook hop-bounded Bellman–Ford: ``max_hops`` relaxation
    rounds over the *current frontier* only, so the cost is
    ``O(max_hops * |E(H)|)`` in the worst case but usually far less on the
    sparse unions this package deals with.

    Parameters
    ----------
    weighted:
        The weighted graph (typically ``G ∪ H`` from :func:`union_with_graph`).
    source:
        Start vertex.
    max_hops:
        Maximum number of edges a path may use; must be non-negative.

    Returns
    -------
    dict
        ``vertex -> d^{(max_hops)}(source, vertex)`` for every vertex
        reachable within the hop budget.
    """
    if not (0 <= source < weighted.num_vertices):
        raise ValueError(f"source {source} out of range [0, {weighted.num_vertices})")
    if max_hops < 0:
        raise ValueError(f"max_hops must be non-negative, got {max_hops}")
    if kernels.vectorized_hop_limited_usable(weighted.num_vertices):
        # Vectorized rounds over the cached CSR snapshot; same relaxation
        # schedule and 1e-12 improvement tolerance as the loop below.
        return kernels.hop_limited(weighted.csr(), source, max_hops)
    best: Dict[int, float] = {source: 0.0}
    frontier: Dict[int, float] = {source: 0.0}
    for _ in range(max_hops):
        next_frontier: Dict[int, float] = {}
        for u, du in frontier.items():
            for v, w in weighted.neighbors(u).items():
                nd = du + w
                if nd < best.get(v, float("inf")) - 1e-12:
                    best[v] = nd
                    previous = next_frontier.get(v, float("inf"))
                    if nd < previous:
                        next_frontier[v] = nd
        if not next_frontier:
            break
        frontier = next_frontier
    return best


def hop_limited_distance(
    weighted: WeightedGraph, source: int, target: int, max_hops: int
) -> float:
    """``d^{(max_hops)}(source, target)``; ``inf`` when no such path exists."""
    if not (0 <= target < weighted.num_vertices):
        raise ValueError(f"target {target} out of range [0, {weighted.num_vertices})")
    return hop_limited_distances(weighted, source, max_hops).get(target, float("inf"))
