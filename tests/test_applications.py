"""Tests for the downstream applications (distance oracle, almost-shortest paths)."""

from __future__ import annotations

import pytest

from repro.applications.almost_shortest_paths import (
    all_sources_almost_shortest_paths,
    almost_shortest_path_lengths,
)
from repro.applications.distance_oracle import EmulatorDistanceOracle
from repro.graphs import generators
from repro.graphs.shortest_paths import bfs_distances


class TestDistanceOracle:
    @pytest.fixture(scope="class")
    def oracle_and_graph(self):
        graph = generators.connected_erdos_renyi(100, 0.05, seed=23)
        with pytest.warns(DeprecationWarning):
            oracle = EmulatorDistanceOracle(graph, eps=0.1, kappa=8)
        return oracle, graph

    def test_shim_warns_and_delegates_to_the_bounded_engine(self, path10):
        from repro.serve import QueryEngine

        with pytest.warns(DeprecationWarning, match="repro.serve.load"):
            oracle = EmulatorDistanceOracle(path10, eps=0.1, kappa=4, cache_sources=3)
        assert isinstance(oracle.engine, QueryEngine)
        assert oracle.engine.cache_sources == 3
        # The memo is bounded: touching many sources evicts, never grows.
        for source in range(10):
            oracle.single_source(source)
        assert oracle.engine.stats()["cached_sources"] == 3
        assert oracle.engine.stats()["cache_evictions"] == 7

    def test_query_guarantee(self, oracle_and_graph):
        oracle, graph = oracle_and_graph
        exact = bfs_distances(graph, 0)
        for v in list(range(1, 50)):
            answer = oracle.query(0, v)
            assert answer >= exact[v] - 1e-9
            assert answer <= oracle.alpha * exact[v] + oracle.beta + 1e-9

    def test_query_self(self, oracle_and_graph):
        oracle, _ = oracle_and_graph
        assert oracle.query(5, 5) == 0.0

    def test_query_batch_matches_single(self, oracle_and_graph):
        oracle, _ = oracle_and_graph
        pairs = [(0, 10), (3, 40), (7, 7)]
        batch = oracle.query_batch(pairs)
        assert batch == [oracle.query(*p) for p in pairs]

    def test_single_source_map(self, oracle_and_graph):
        oracle, graph = oracle_and_graph
        dist = oracle.single_source(2)
        assert dist[2] == 0.0
        assert len(dist) == graph.num_vertices

    def test_space_is_sparse(self, oracle_and_graph):
        oracle, graph = oracle_and_graph
        assert oracle.space_in_edges <= oracle.emulator_result.size_bound + 1e-9

    def test_ultra_sparse_default_kappa(self):
        graph = generators.grid_graph(10, 10)
        oracle = EmulatorDistanceOracle(graph, eps=0.1)
        assert oracle.space_in_edges <= 1.2 * graph.num_vertices

    def test_invalid_vertex(self, oracle_and_graph):
        oracle, _ = oracle_and_graph
        with pytest.raises(ValueError):
            oracle.query(0, 9999)

    def test_cache_eviction(self):
        graph = generators.path_graph(20)
        oracle = EmulatorDistanceOracle(graph, eps=0.1, kappa=4, cache_sources=2)
        for s in range(5):
            oracle.single_source(s)
        # Oldest entries are evicted, queries still correct.
        assert oracle.query(0, 19) >= 19

    def test_disconnected_pairs_return_inf(self, disconnected_graph):
        oracle = EmulatorDistanceOracle(disconnected_graph, eps=0.1, kappa=4)
        assert oracle.query(0, 9) == float("inf")


class TestAlmostShortestPaths:
    def test_single_source_guarantee(self):
        graph = generators.grid_graph(8, 8)
        lengths = almost_shortest_path_lengths(graph, source=0, eps=0.1, kappa=4)
        exact = bfs_distances(graph, 0)
        from repro.core.parameters import CentralizedSchedule

        sched = CentralizedSchedule(n=64, eps=0.1, kappa=4)
        for v, d in exact.items():
            assert lengths[v] >= d - 1e-9
            assert lengths[v] <= sched.alpha * d + sched.beta + 1e-9

    def test_reuse_prebuilt_emulator(self):
        from repro.core.emulator import build_emulator

        graph = generators.cycle_graph(30)
        result = build_emulator(graph, eps=0.1, kappa=4)
        a = almost_shortest_path_lengths(graph, 0, emulator_result=result)
        b = almost_shortest_path_lengths(graph, 0, emulator_result=result)
        assert a == b

    def test_invalid_source(self):
        graph = generators.path_graph(5)
        with pytest.raises(ValueError):
            almost_shortest_path_lengths(graph, 99)

    def test_all_sources(self):
        graph = generators.connected_erdos_renyi(50, 0.08, seed=3)
        answers = all_sources_almost_shortest_paths(graph, [0, 5, 10], eps=0.1, kappa=8)
        assert set(answers) == {0, 5, 10}
        for source, lengths in answers.items():
            exact = bfs_distances(graph, source)
            for v, d in exact.items():
                assert lengths[v] >= d - 1e-9

    def test_all_sources_invalid(self):
        graph = generators.path_graph(5)
        with pytest.raises(ValueError):
            all_sources_almost_shortest_paths(graph, [0, 7])
