"""Tests for the baseline constructions (EP01, TZ06, EN17a, EM19, greedy)."""

from __future__ import annotations

import pytest

from repro.analysis.validation import verify_no_shortening, verify_spanner
from repro.baselines.elkin_neiman import build_elkin_neiman_emulator
from repro.baselines.elkin_peleg import build_elkin_peleg_emulator
from repro.baselines.em19_spanner import build_em19_spanner
from repro.baselines.multiplicative import bfs_tree_spanner, greedy_multiplicative_spanner
from repro.baselines.thorup_zwick import build_thorup_zwick_emulator
from repro.core.emulator import build_emulator
from repro.graphs import generators
from repro.graphs.shortest_paths import bfs_distances


class TestElkinPeleg:
    def test_builds_and_counts(self, random_graph):
        result = build_elkin_peleg_emulator(random_graph, eps=0.1, kappa=4)
        assert result.num_edges > 0
        assert result.ground_forest_edges == random_graph.num_vertices - 1

    def test_never_shortens(self, small_random_graph):
        result = build_elkin_peleg_emulator(small_random_graph, eps=0.1, kappa=4)
        assert verify_no_shortening(small_random_graph, result.emulator, sample_pairs=None)

    def test_contains_spanning_forest(self, random_graph):
        result = build_elkin_peleg_emulator(random_graph, eps=0.1, kappa=4)
        # Ground partition guarantees connectivity of the emulator.
        nx_graph = result.emulator.to_networkx()
        import networkx as nx

        assert nx.is_connected(nx_graph)

    def test_denser_than_ours_at_sparse_settings(self):
        # The introduction's point: prior constructions pay at least ~2n
        # edges at their sparsest, ours pays n + o(n).
        graph = generators.connected_erdos_renyi(150, 0.05, seed=17)
        kappa = 16
        ours = build_emulator(graph, eps=0.1, kappa=kappa).num_edges
        ep01 = build_elkin_peleg_emulator(graph, eps=0.1, kappa=kappa).num_edges
        assert ep01 > ours

    def test_breakdown_sums_to_total(self, small_random_graph):
        result = build_elkin_peleg_emulator(small_random_graph, eps=0.1, kappa=4)
        assert (result.ground_forest_edges + result.interconnection_edges
                + result.superclustering_edges) >= result.num_edges


class TestThorupZwick:
    def test_builds(self, random_graph):
        result = build_thorup_zwick_emulator(random_graph, kappa=4, seed=1)
        assert result.num_edges > 0

    def test_never_shortens(self, small_random_graph):
        result = build_thorup_zwick_emulator(small_random_graph, kappa=4, seed=1)
        assert verify_no_shortening(small_random_graph, result.emulator, sample_pairs=None)

    def test_seed_reproducible(self, small_random_graph):
        a = build_thorup_zwick_emulator(small_random_graph, kappa=4, seed=3)
        b = build_thorup_zwick_emulator(small_random_graph, kappa=4, seed=3)
        assert sorted(a.emulator.edges()) == sorted(b.emulator.edges())

    def test_different_seeds_usually_differ(self, random_graph):
        a = build_thorup_zwick_emulator(random_graph, kappa=4, seed=1)
        b = build_thorup_zwick_emulator(random_graph, kappa=4, seed=2)
        assert sorted(a.emulator.edges()) != sorted(b.emulator.edges())

    def test_edge_weights_are_graph_distances(self, small_random_graph):
        result = build_thorup_zwick_emulator(small_random_graph, kappa=4, seed=5)
        for u, v, w in result.emulator.edges():
            assert w == bfs_distances(small_random_graph, u)[v]

    def test_levels_recorded(self, small_random_graph):
        result = build_thorup_zwick_emulator(small_random_graph, kappa=8, seed=5)
        assert result.levels >= 1


class TestElkinNeiman:
    def test_builds(self, random_graph):
        result = build_elkin_neiman_emulator(random_graph, eps=0.1, kappa=4, seed=1)
        assert result.num_edges > 0

    def test_never_shortens(self, small_random_graph):
        result = build_elkin_neiman_emulator(small_random_graph, eps=0.1, kappa=4, seed=1)
        assert verify_no_shortening(small_random_graph, result.emulator, sample_pairs=None)

    def test_seed_reproducible(self, small_random_graph):
        a = build_elkin_neiman_emulator(small_random_graph, eps=0.1, kappa=4, seed=2)
        b = build_elkin_neiman_emulator(small_random_graph, eps=0.1, kappa=4, seed=2)
        assert sorted(a.emulator.edges()) == sorted(b.emulator.edges())

    def test_edge_weights_are_graph_distances(self, small_random_graph):
        result = build_elkin_neiman_emulator(small_random_graph, eps=0.1, kappa=4, seed=3)
        for u, v, w in result.emulator.edges():
            assert w == bfs_distances(small_random_graph, u)[v]


class TestEm19Spanner:
    def test_is_subgraph_with_valid_stretch(self, random_graph):
        result = build_em19_spanner(random_graph, eps=0.01, kappa=4, rho=0.45)
        assert result.is_subgraph_of(random_graph)
        report = verify_spanner(random_graph, result.spanner, result.alpha, result.beta)
        assert report.valid

    def test_never_sparser_than_section4_by_much(self, random_graph):
        from repro.core.spanner import build_near_additive_spanner

        ours = build_near_additive_spanner(random_graph, eps=0.01, kappa=4, rho=0.45)
        em19 = build_em19_spanner(random_graph, eps=0.01, kappa=4, rho=0.45)
        assert ours.num_edges <= em19.num_edges * 1.1 + 5


class TestMultiplicativeSpanners:
    def test_greedy_stretch_property(self, small_random_graph):
        k = 2
        spanner = greedy_multiplicative_spanner(small_random_graph, k)
        for u in small_random_graph.vertices():
            dg = bfs_distances(small_random_graph, u)
            dh = bfs_distances(spanner, u)
            for v, d in dg.items():
                assert dh.get(v, float("inf")) <= (2 * k - 1) * d

    def test_greedy_is_subgraph(self, random_graph):
        spanner = greedy_multiplicative_spanner(random_graph, 3)
        for u, v in spanner.edges():
            assert random_graph.has_edge(u, v)

    def test_greedy_sparser_than_input_on_dense_graph(self):
        g = generators.erdos_renyi(40, 0.5, seed=8)
        spanner = greedy_multiplicative_spanner(g, 2)
        assert spanner.num_edges < g.num_edges

    def test_greedy_k1_keeps_everything(self, small_random_graph):
        spanner = greedy_multiplicative_spanner(small_random_graph, 1)
        assert spanner.num_edges == small_random_graph.num_edges

    def test_greedy_invalid_k(self, path10):
        with pytest.raises(ValueError):
            greedy_multiplicative_spanner(path10, 0)

    def test_bfs_tree_spanner_is_spanning_forest(self, random_graph):
        spanner = bfs_tree_spanner(random_graph)
        assert spanner.num_edges == random_graph.num_vertices - 1
        assert spanner.is_connected()

    def test_bfs_tree_spanner_disconnected(self, disconnected_graph):
        spanner = bfs_tree_spanner(disconnected_graph)
        assert len(spanner.connected_components()) == len(
            disconnected_graph.connected_components()
        )
