"""Unit tests for the unweighted graph container."""

from __future__ import annotations

import pytest

from repro.graphs.graph import Graph
from repro.graphs import generators


class TestConstruction:
    def test_empty_graph(self):
        g = Graph(0)
        assert g.num_vertices == 0
        assert g.num_edges == 0
        assert list(g.edges()) == []

    def test_vertices_range(self):
        g = Graph(5)
        assert list(g.vertices()) == [0, 1, 2, 3, 4]

    def test_negative_vertex_count_rejected(self):
        with pytest.raises(ValueError):
            Graph(-1)

    def test_construct_with_edges(self):
        g = Graph(4, [(0, 1), (1, 2), (2, 3)])
        assert g.num_edges == 3
        assert g.has_edge(0, 1)
        assert g.has_edge(3, 2)

    def test_from_edge_list(self):
        g = Graph.from_edge_list(3, [(0, 2)])
        assert g.num_edges == 1
        assert g.has_edge(2, 0)


class TestEdges:
    def test_add_edge_new(self):
        g = Graph(3)
        assert g.add_edge(0, 1) is True
        assert g.num_edges == 1

    def test_add_edge_duplicate(self):
        g = Graph(3)
        g.add_edge(0, 1)
        assert g.add_edge(1, 0) is False
        assert g.num_edges == 1

    def test_add_self_loop_rejected(self):
        g = Graph(3)
        with pytest.raises(ValueError):
            g.add_edge(1, 1)

    def test_add_edge_out_of_range(self):
        g = Graph(3)
        with pytest.raises(ValueError):
            g.add_edge(0, 3)
        with pytest.raises(ValueError):
            g.add_edge(-1, 0)

    def test_remove_edge(self):
        g = Graph(3, [(0, 1), (1, 2)])
        assert g.remove_edge(0, 1) is True
        assert g.num_edges == 1
        assert not g.has_edge(0, 1)

    def test_remove_missing_edge(self):
        g = Graph(3)
        assert g.remove_edge(0, 1) is False

    def test_edges_are_ordered_pairs(self):
        g = Graph(4, [(3, 0), (2, 1)])
        edges = list(g.edges())
        assert all(u < v for u, v in edges)
        assert set(edges) == {(0, 3), (1, 2)}

    def test_has_edge_out_of_range_is_false(self):
        g = Graph(3, [(0, 1)])
        assert not g.has_edge(0, 5)
        assert not g.has_edge(-1, 0)


class TestNeighborsAndDegrees:
    def test_neighbors(self):
        g = Graph(4, [(0, 1), (0, 2), (0, 3)])
        assert g.neighbors(0) == {1, 2, 3}
        assert g.neighbors(1) == {0}

    def test_degree(self):
        g = Graph(4, [(0, 1), (0, 2)])
        assert g.degree(0) == 2
        assert g.degree(3) == 0

    def test_degree_histogram(self):
        g = generators.star_graph(5)
        hist = g.degree_histogram()
        assert hist == {4: 1, 1: 4}

    def test_degree_out_of_range(self):
        g = Graph(2)
        with pytest.raises(ValueError):
            g.degree(5)


class TestConnectivity:
    def test_connected_path(self):
        assert generators.path_graph(6).is_connected()

    def test_disconnected(self):
        g = Graph(4, [(0, 1)])
        assert not g.is_connected()

    def test_empty_graph_is_connected(self):
        assert Graph(0).is_connected()

    def test_single_vertex_is_connected(self):
        assert Graph(1).is_connected()

    def test_connected_components(self):
        g = Graph(6, [(0, 1), (1, 2), (3, 4)])
        comps = g.connected_components()
        assert sorted(map(tuple, comps)) == [(0, 1, 2), (3, 4), (5,)]

    def test_components_cover_all_vertices(self):
        g = generators.connected_erdos_renyi(30, 0.1, seed=3)
        comps = g.connected_components()
        assert sorted(v for comp in comps for v in comp) == list(range(30))


class TestCopyAndViews:
    def test_copy_is_independent(self):
        g = Graph(3, [(0, 1)])
        h = g.copy()
        h.add_edge(1, 2)
        assert g.num_edges == 1
        assert h.num_edges == 2

    def test_copy_equal(self):
        g = Graph(4, [(0, 1), (2, 3)])
        assert g.copy() == g

    def test_subgraph_edges(self):
        g = Graph(4, [(0, 1), (1, 2), (2, 3)])
        sub = g.subgraph_edges([(0, 1)])
        assert sub.num_edges == 1
        assert sub.num_vertices == 4

    def test_equality_different_edges(self):
        assert Graph(3, [(0, 1)]) != Graph(3, [(1, 2)])

    def test_contains_and_len(self):
        g = Graph(5)
        assert 4 in g
        assert 5 not in g
        assert len(g) == 5

    def test_repr(self):
        assert "n=3" in repr(Graph(3, [(0, 1)]))


class TestNetworkxInterop:
    def test_roundtrip(self):
        g = generators.grid_graph(3, 3)
        nx_graph = g.to_networkx()
        back = Graph.from_networkx(nx_graph)
        assert back == g

    def test_from_networkx_relabels(self):
        import networkx as nx

        nx_graph = nx.Graph()
        nx_graph.add_edge("b", "a")
        nx_graph.add_edge("b", "c")
        g = Graph.from_networkx(nx_graph)
        assert g.num_vertices == 3
        assert g.num_edges == 2

    def test_to_networkx_preserves_counts(self):
        g = generators.connected_erdos_renyi(25, 0.2, seed=1)
        nx_graph = g.to_networkx()
        assert nx_graph.number_of_nodes() == g.num_vertices
        assert nx_graph.number_of_edges() == g.num_edges
