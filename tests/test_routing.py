"""Tests for the landmark routing scheme."""

from __future__ import annotations

import pytest

from repro.applications.routing import LandmarkRoutingScheme
from repro.graphs import generators
from repro.graphs.shortest_paths import bfs_distances


class TestConstruction:
    def test_default_landmarks_come_from_the_emulator_hierarchy(self, random_graph):
        scheme = LandmarkRoutingScheme(random_graph, eps=0.1, kappa=4.0)
        assert scheme.num_landmarks >= 1
        assert all(l in random_graph for l in scheme.tables.landmarks)

    def test_explicit_landmarks_are_respected(self, grid6x6):
        scheme = LandmarkRoutingScheme(grid6x6, eps=0.1, kappa=4.0, landmarks=[0, 35])
        assert scheme.tables.landmarks == [0, 35]

    def test_empty_graph_rejected(self):
        from repro.graphs.graph import Graph

        with pytest.raises(ValueError):
            LandmarkRoutingScheme(Graph(0))

    def test_invalid_landmark_rejected(self, path10):
        with pytest.raises(ValueError):
            LandmarkRoutingScheme(path10, landmarks=[99])

    def test_table_construction_does_not_fill_the_engine_memo(self, random_graph):
        # Landmark maps are read transiently from the bare backend, so the
        # scheme's retained engine must not pin one full distance map per
        # landmark for its lifetime.
        scheme = LandmarkRoutingScheme(random_graph, eps=0.1, kappa=4.0)
        assert scheme.oracle.stats()["cached_sources"] == 0

    def test_tables_cover_connected_graph(self, grid6x6):
        scheme = LandmarkRoutingScheme(grid6x6, eps=0.1, kappa=4.0)
        assert set(scheme.tables.nearest_landmark) == set(grid6x6.vertices())

    def test_table_sizes_reported(self, random_graph):
        scheme = LandmarkRoutingScheme(random_graph, eps=0.1, kappa=4.0)
        tables = scheme.tables
        assert tables.total_words >= 2 * random_graph.num_vertices
        assert tables.words_per_vertex >= 2.0


class TestQueries:
    def test_estimate_zero_on_identical_vertices(self, random_graph):
        scheme = LandmarkRoutingScheme(random_graph, eps=0.1, kappa=4.0)
        assert scheme.estimate(3, 3) == 0.0

    def test_estimate_is_symmetric(self, random_graph):
        scheme = LandmarkRoutingScheme(random_graph, eps=0.1, kappa=4.0)
        assert scheme.estimate(1, 20) == pytest.approx(scheme.estimate(20, 1))

    def test_estimate_never_returns_negative(self, grid6x6):
        scheme = LandmarkRoutingScheme(grid6x6, eps=0.1, kappa=4.0)
        for target in range(grid6x6.num_vertices):
            assert scheme.estimate(0, target) >= 0.0

    def test_estimate_with_every_vertex_a_landmark_is_near_exact(self, grid6x6):
        # With all vertices as landmarks, the estimate is d(u,u)+d_H(u,v)+d(v,v)
        # = the emulator distance, which never undershoots the graph distance.
        scheme = LandmarkRoutingScheme(
            grid6x6, eps=0.1, kappa=4.0, landmarks=list(grid6x6.vertices())
        )
        exact = bfs_distances(grid6x6, 0)
        for target, dg in exact.items():
            if target == 0:
                continue
            assert scheme.estimate(0, target) >= dg - 1e-9

    def test_query_out_of_range_rejected(self, path10):
        scheme = LandmarkRoutingScheme(path10, eps=0.1, kappa=4.0)
        with pytest.raises(ValueError):
            scheme.estimate(0, 99)

    def test_disconnected_pair_reports_infinity(self, disconnected_graph):
        scheme = LandmarkRoutingScheme(
            disconnected_graph, eps=0.1, kappa=4.0, landmarks=[0]
        )
        # Vertex 7 lives in the other component: it has no covering landmark.
        assert scheme.estimate(0, 7) == float("inf")


class TestStretchSummary:
    def test_summary_fields_present_and_sane(self, random_graph):
        scheme = LandmarkRoutingScheme(random_graph, eps=0.1, kappa=4.0)
        summary = scheme.stretch_summary(sample_sources=4)
        assert summary["pairs"] > 0
        assert summary["mean_stretch"] >= 1.0 - 1e-9
        assert summary["max_stretch"] >= summary["mean_stretch"] - 1e-9

    def test_ring_of_cliques_routes_well(self):
        graph = generators.ring_of_cliques(6, 8)
        scheme = LandmarkRoutingScheme(graph, eps=0.1)
        summary = scheme.stretch_summary(sample_sources=6)
        # Routing through landmarks can stretch distances but not absurdly on
        # a pod-structured topology.
        assert summary["max_stretch"] <= graph.num_vertices
