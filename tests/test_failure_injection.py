"""Failure-injection and defensive-behaviour tests.

The library is meant to be embedded in larger pipelines, so misuse must fail
loudly and early: malformed graphs, mismatched schedules, bandwidth
violations in hand-written CONGEST programs, and corrupted emulator files
must all raise clear errors rather than silently producing wrong structures.
"""

from __future__ import annotations

import pytest

from repro.analysis.validation import verify_emulator
from repro.congest.network import BandwidthViolation, SynchronousNetwork
from repro.core.clusters import Cluster, Partition
from repro.core.emulator import UltraSparseEmulatorBuilder, build_emulator
from repro.core.parameters import CentralizedSchedule, DistributedSchedule
from repro.graphs import generators, io
from repro.graphs.graph import Graph
from repro.graphs.weighted_graph import WeightedGraph


class TestMalformedInputs:
    def test_graph_rejects_bad_vertices(self):
        g = Graph(3)
        with pytest.raises(ValueError):
            g.add_edge(0, 3)
        with pytest.raises(ValueError):
            g.neighbors(7)

    def test_weighted_graph_rejects_bad_weight(self):
        h = WeightedGraph(3)
        with pytest.raises(ValueError):
            h.add_edge(0, 1, -2.0)

    def test_schedule_rejects_nonsense(self):
        with pytest.raises(ValueError):
            CentralizedSchedule(n=10, eps=0.1, kappa=0.5)
        with pytest.raises(ValueError):
            DistributedSchedule(n=10, eps=0.1, kappa=4, rho=0.9)

    def test_builder_rejects_mismatched_schedule(self):
        graph = generators.path_graph(10)
        with pytest.raises(ValueError):
            UltraSparseEmulatorBuilder(graph, schedule=CentralizedSchedule(n=11, eps=0.1, kappa=4))

    def test_corrupted_emulator_file_detected(self, tmp_path):
        path = tmp_path / "broken.txt"
        path.write_text("4 2\n0 1 1.0\n")  # header claims 2 edges, file has 1
        with pytest.raises(ValueError):
            io.read_weighted_edge_list(path)

    def test_validator_rejects_vertex_mismatch(self):
        graph = generators.path_graph(6)
        with pytest.raises(ValueError):
            verify_emulator(graph, WeightedGraph(7), 1.0, 1.0)


class TestPartitionMisuse:
    def test_overlapping_clusters_rejected(self):
        partition = Partition([Cluster(center=0, members={0, 1})])
        with pytest.raises(ValueError):
            partition.add(Cluster(center=2, members={1, 2}))

    def test_validate_disjoint_catches_corruption(self):
        partition = Partition([Cluster(center=0, members={0, 1})])
        # Corrupt the internal structure deliberately (simulating a buggy caller).
        partition._by_center[2] = Cluster(center=2, members={1, 2})  # type: ignore[attr-defined]
        with pytest.raises(AssertionError):
            partition.validate_disjoint()


class TestBandwidthViolations:
    def test_double_send_raises_in_strict_mode(self):
        net = SynchronousNetwork(generators.path_graph(4))
        net.send(1, 2, (1,))
        with pytest.raises(BandwidthViolation):
            net.send(1, 2, (2,))

    def test_fat_payload_raises(self):
        net = SynchronousNetwork(generators.path_graph(4))
        with pytest.raises(BandwidthViolation):
            net.send(0, 1, (1, 2, 3, 4, 5, 6))

    def test_non_strict_mode_continues(self):
        net = SynchronousNetwork(generators.path_graph(4), strict=False)
        net.send(1, 2, (1,))
        net.send(1, 2, (2,))
        net.send(1, 2, (3,))
        assert net.bandwidth_violations == 2
        assert len(net.deliver()[2]) == 1


class TestDegenerateGraphs:
    def test_emulator_on_edgeless_graph(self):
        result = build_emulator(Graph(25), eps=0.1, kappa=4)
        assert result.num_edges == 0
        assert result.within_size_bound()

    def test_emulator_on_two_vertices(self):
        result = build_emulator(Graph(2, [(0, 1)]), eps=0.1, kappa=2)
        assert result.num_edges <= 2
        report = verify_emulator(Graph(2, [(0, 1)]), result.emulator,
                                 result.alpha, result.beta)
        assert report.valid

    def test_emulator_on_many_isolated_vertices_plus_clique(self):
        g = Graph(30)
        for i in range(5):
            for j in range(i + 1, 5):
                g.add_edge(i, j)
        result = build_emulator(g, eps=0.1, kappa=4)
        assert result.within_size_bound()
        report = verify_emulator(g, result.emulator, result.alpha, result.beta)
        assert report.valid

    def test_spanner_on_edgeless_graph(self):
        from repro.core.spanner import build_near_additive_spanner

        result = build_near_additive_spanner(Graph(10), eps=0.01, kappa=4, rho=0.45)
        assert result.num_edges == 0

    def test_congest_on_single_edge(self):
        from repro.distributed.emulator_congest import build_emulator_congest

        result = build_emulator_congest(Graph(2, [(0, 1)]), eps=0.01, kappa=4, rho=0.45)
        assert result.num_edges <= 2
        assert result.both_endpoints_know_all_edges()
