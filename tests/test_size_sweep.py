"""Size-bound sweep: the E1/E2 claims checked densely across kappa and n.

These complement the property-based tests with a deterministic sweep that
mirrors the "figure-style" view of the paper's size claims: how the emulator
size tracks the ``n^(1+1/kappa)`` curve as ``kappa`` grows, and how the
excess over ``n`` vanishes in the ultra-sparse regime.
"""

from __future__ import annotations

import pytest

from repro.core.emulator import build_emulator
from repro.core.parameters import CentralizedSchedule, size_bound, ultra_sparse_kappa
from repro.graphs import generators


@pytest.fixture(scope="module")
def sweep_graph():
    return generators.connected_erdos_renyi(150, 0.05, seed=77)


class TestKappaSweep:
    @pytest.mark.parametrize("kappa", [2, 3, 4, 6, 8, 12, 16, 24, 32, 64])
    def test_size_bound_across_kappa(self, sweep_graph, kappa):
        result = build_emulator(sweep_graph, eps=0.1, kappa=kappa)
        assert result.num_edges <= size_bound(150, kappa) + 1e-9

    def test_size_is_monotone_nonincreasing_in_kappa_up_to_noise(self, sweep_graph):
        # Larger kappa -> sparser target; measured sizes should trend down
        # (allow small non-monotonicity because phases change discretely).
        sizes = [build_emulator(sweep_graph, eps=0.1, kappa=k).num_edges
                 for k in (2, 4, 8, 16, 32)]
        assert sizes[-1] <= sizes[0]
        assert min(sizes) >= 150 - 1  # never below a spanning structure minus one

    def test_kappa_two_uses_most_edges(self, sweep_graph):
        dense = build_emulator(sweep_graph, eps=0.1, kappa=2).num_edges
        sparse = build_emulator(sweep_graph, eps=0.1, kappa=32).num_edges
        assert dense >= sparse


class TestUltraSparseSweep:
    @pytest.mark.parametrize("n", [64, 128, 256, 400])
    def test_excess_over_n_shrinks_relatively(self, n):
        graph = generators.connected_erdos_renyi(n, min(1.0, 8.0 / n), seed=n)
        kappa = ultra_sparse_kappa(n)
        schedule = CentralizedSchedule(n=n, eps=0.1, kappa=kappa)
        result = build_emulator(graph, schedule=schedule)
        allowance = size_bound(n, kappa) - n
        assert result.num_edges - n <= allowance + 1e-9
        # The allowance itself is o(n): well under 20% of n at these sizes.
        assert allowance < 0.2 * n

    def test_ultra_sparse_kappa_monotone(self):
        values = [ultra_sparse_kappa(n) for n in (64, 256, 1024, 4096)]
        assert values == sorted(values)


class TestDifferentEpsilons:
    @pytest.mark.parametrize("eps", [0.02, 0.05, 0.1])
    def test_size_bound_independent_of_eps(self, sweep_graph, eps):
        # The size bound depends only on kappa, never on eps.
        result = build_emulator(sweep_graph, eps=eps, kappa=8)
        assert result.num_edges <= size_bound(150, 8) + 1e-9

    @pytest.mark.parametrize("eps", [0.02, 0.1])
    def test_stretch_guarantee_for_each_eps(self, sweep_graph, eps):
        from repro.analysis.validation import verify_emulator

        result = build_emulator(sweep_graph, eps=eps, kappa=8)
        report = verify_emulator(sweep_graph, result.emulator, result.alpha, result.beta,
                                 sample_pairs=250)
        assert report.valid
