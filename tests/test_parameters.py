"""Unit tests for the parameter schedules (Sections 2.1.2, 3.1.1, 4)."""

from __future__ import annotations

import math

import pytest

from repro.core.parameters import (
    CentralizedSchedule,
    DistributedSchedule,
    SpannerSchedule,
    size_bound,
    ultra_sparse_kappa,
)


class TestSizeBound:
    def test_basic(self):
        assert size_bound(100, 2) == pytest.approx(1000.0)

    def test_large_kappa_tends_to_n(self):
        assert size_bound(1000, 1000) == pytest.approx(1000 ** (1 + 1 / 1000))
        assert size_bound(1000, 10_000) < 1010

    def test_invalid(self):
        with pytest.raises(ValueError):
            size_bound(-1, 2)
        with pytest.raises(ValueError):
            size_bound(10, 0)

    def test_ultra_sparse_kappa_is_superlogarithmic(self):
        for n in (256, 4096, 1 << 20):
            assert ultra_sparse_kappa(n) > math.log2(n)

    def test_ultra_sparse_kappa_small_n(self):
        assert ultra_sparse_kappa(2) == 2.0


class TestCentralizedSchedule:
    def test_ell_matches_formula(self):
        for kappa in (2, 3, 4, 8, 16, 33):
            sched = CentralizedSchedule(n=100, eps=0.1, kappa=kappa)
            assert sched.ell == max(1, math.ceil(math.log2((kappa + 1) / 2)))

    def test_degree_sequence_squares(self):
        sched = CentralizedSchedule(n=256, eps=0.1, kappa=8)
        for i in range(sched.ell):
            assert sched.degree(i + 1) == pytest.approx(sched.degree(i) ** 2)

    def test_degree_formula(self):
        sched = CentralizedSchedule(n=100, eps=0.1, kappa=4)
        assert sched.degree(0) == pytest.approx(100 ** 0.25)
        assert sched.degree(1) == pytest.approx(100 ** 0.5)

    def test_delta_zero_is_one(self):
        sched = CentralizedSchedule(n=50, eps=0.1, kappa=4)
        assert sched.delta(0) == pytest.approx(1.0)

    def test_radius_recursion(self):
        sched = CentralizedSchedule(n=50, eps=0.1, kappa=16)
        for i in range(sched.ell):
            assert sched.radius_bound(i + 1) == pytest.approx(
                2 * sched.delta(i) + sched.radius_bound(i)
            )

    def test_delta_formula(self):
        sched = CentralizedSchedule(n=50, eps=0.1, kappa=16)
        for i in range(sched.num_phases):
            assert sched.delta(i) == pytest.approx(
                (1 / 0.1) ** i + 2 * sched.radius_bound(i)
            )

    def test_radius_explicit_bound(self):
        # Lemma 2.6 / eq. 5: R_i <= 4 (1/eps)^(i-1) for eps <= 1/10.
        sched = CentralizedSchedule(n=1000, eps=0.1, kappa=64)
        for i in range(1, sched.num_phases):
            assert sched.radius_bound(i) <= 4.0 * (1 / 0.1) ** (i - 1) + 1e-9

    def test_alpha_beta(self):
        sched = CentralizedSchedule(n=100, eps=0.1, kappa=4)
        assert sched.alpha == pytest.approx(1 + 34 * 0.1 * sched.ell)
        assert sched.beta == pytest.approx(30 * 10 ** (sched.ell - 1))

    def test_max_edges(self):
        sched = CentralizedSchedule(n=100, eps=0.1, kappa=4)
        assert sched.max_edges == pytest.approx(100 ** 1.25)

    def test_num_phases(self):
        sched = CentralizedSchedule(n=100, eps=0.1, kappa=4)
        assert sched.num_phases == sched.ell + 1
        assert len(sched.degrees) == sched.num_phases
        assert len(sched.deltas) == sched.num_phases
        assert len(sched.radii) == sched.num_phases

    def test_from_target_stretch(self):
        sched = CentralizedSchedule.from_target_stretch(n=200, eps_target=0.5, kappa=8)
        assert sched.alpha == pytest.approx(1.5)

    def test_from_target_stretch_validation(self):
        with pytest.raises(ValueError):
            CentralizedSchedule.from_target_stretch(n=10, eps_target=2.0, kappa=4)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            CentralizedSchedule(n=0, eps=0.1, kappa=4)
        with pytest.raises(ValueError):
            CentralizedSchedule(n=10, eps=-0.1, kappa=4)
        with pytest.raises(ValueError):
            CentralizedSchedule(n=10, eps=0.1, kappa=1)

    def test_fractional_kappa_allowed(self):
        sched = CentralizedSchedule(n=100, eps=0.1, kappa=13.7)
        assert sched.max_edges == pytest.approx(100 ** (1 + 1 / 13.7))


class TestDistributedSchedule:
    def test_stage_structure(self):
        sched = DistributedSchedule(n=1000, eps=0.01, kappa=8, rho=0.4)
        assert sched.i0 == math.floor(math.log2(8 * 0.4))
        for i in range(sched.num_phases):
            if i <= sched.i0:
                assert sched.degree(i) == pytest.approx(1000 ** (2 ** i / 8))
            else:
                assert sched.degree(i) == pytest.approx(1000 ** 0.4)

    def test_degrees_capped_at_n_rho(self):
        sched = DistributedSchedule(n=500, eps=0.01, kappa=16, rho=0.3)
        for i in range(sched.num_phases):
            assert sched.degree(i) <= 500 ** 0.3 + 1e-9

    def test_degree_squaring_condition(self):
        # eq. 18 needs deg_{i+1} <= deg_i^2 in every phase.
        sched = DistributedSchedule(n=400, eps=0.01, kappa=8, rho=0.45)
        for i in range(sched.num_phases - 1):
            assert sched.degree(i + 1) <= sched.degree(i) ** 2 + 1e-9

    def test_radius_recursion(self):
        sched = DistributedSchedule(n=100, eps=0.01, kappa=4, rho=0.4)
        growth = 4 / 0.4 + 2
        for i in range(sched.ell):
            assert sched.radius_bound(i + 1) == pytest.approx(
                growth * sched.delta(i) + sched.radius_bound(i)
            )

    def test_separation_and_ruling_radius(self):
        sched = DistributedSchedule(n=100, eps=0.01, kappa=4, rho=0.4)
        for i in range(sched.num_phases):
            assert sched.separation(i) == pytest.approx(2 * sched.delta(i) + 1)
            assert sched.ruling_radius(i) == pytest.approx((2 / 0.4) * sched.delta(i))

    def test_rho_validation(self):
        with pytest.raises(ValueError):
            DistributedSchedule(n=100, eps=0.01, kappa=4, rho=0.6)
        with pytest.raises(ValueError):
            DistributedSchedule(n=100, eps=0.01, kappa=4, rho=0.1)  # rho < 1/kappa

    def test_alpha_beta_round_bound(self):
        sched = DistributedSchedule(n=100, eps=0.01, kappa=4, rho=0.45)
        assert sched.alpha == pytest.approx(1 + 90 * 0.01 * sched.ell / 0.45)
        assert sched.beta == pytest.approx((75 / 0.45) * 100 ** (sched.ell - 1))
        assert sched.round_bound == pytest.approx(sched.beta * 100 ** 0.45)

    def test_from_target_stretch(self):
        sched = DistributedSchedule.from_target_stretch(n=200, eps_target=0.8, kappa=8, rho=0.4)
        assert sched.alpha == pytest.approx(1.8, rel=0.01)

    def test_ell_at_least_i0_plus_one(self):
        sched = DistributedSchedule(n=64, eps=0.01, kappa=4, rho=0.49)
        assert sched.ell >= sched.i0 + 1


class TestSpannerSchedule:
    def test_gamma_floor_is_two(self):
        sched = SpannerSchedule(n=100, eps=0.01, kappa=4, rho=0.45)
        assert sched.gamma == 2.0

    def test_gamma_grows_with_kappa(self):
        sched = SpannerSchedule(n=10_000, eps=0.01, kappa=1 << 20, rho=0.4)
        assert sched.gamma == pytest.approx(math.log2(20), rel=0.01)

    def test_stage_degrees(self):
        sched = SpannerSchedule(n=1000, eps=0.01, kappa=8, rho=0.4)
        for i in range(sched.num_phases):
            if i <= sched.i0:
                expected = 1000 ** ((2 ** i - 1) / (sched.gamma * 8) + 1 / 8)
            elif i == sched.i0 + 1:
                expected = 1000 ** 0.2
            else:
                expected = 1000 ** 0.4
            assert sched.degree(i) == pytest.approx(expected)

    def test_ell_formula(self):
        sched = SpannerSchedule(n=1000, eps=0.01, kappa=8, rho=0.4)
        assert sched.ell == sched.i0 + max(1, math.ceil(1 / 0.4 - 0.5))

    def test_validation(self):
        with pytest.raises(ValueError):
            SpannerSchedule(n=100, eps=0.01, kappa=4, rho=0.7)
        with pytest.raises(ValueError):
            SpannerSchedule(n=100, eps=0.01, kappa=4, rho=0.05)

    def test_beta_positive(self):
        sched = SpannerSchedule(n=100, eps=0.01, kappa=4, rho=0.45)
        assert sched.beta > 0
        assert sched.alpha > 1
        assert sched.max_edges == pytest.approx(100 ** 1.25)
