"""Tests for the path-reporting oracle (real graph walks with the emulator guarantee)."""

from __future__ import annotations

import pytest

from repro.applications.path_reporting import PathReportingOracle
from repro.graphs import generators
from repro.graphs.shortest_paths import bfs_distances


def _is_walk(graph, path):
    """Whether consecutive vertices of ``path`` are joined by graph edges."""
    return all(graph.has_edge(u, v) for u, v in zip(path, path[1:]))


class TestPathReportingOracle:
    def test_identity_query_returns_single_vertex(self, random_graph):
        oracle = PathReportingOracle(random_graph, eps=0.1, kappa=4.0)
        assert oracle.query_path(5, 5) == [5]
        assert oracle.query_length(5, 5) == 0.0

    def test_reported_path_is_a_real_walk(self, random_graph):
        oracle = PathReportingOracle(random_graph, eps=0.1, kappa=4.0)
        for target in (1, 17, 42, 63):
            path = oracle.query_path(0, target)
            assert path is not None
            assert path[0] == 0 and path[-1] == target
            assert _is_walk(random_graph, path)

    def test_path_length_respects_the_guarantee(self, small_random_graph):
        oracle = PathReportingOracle(small_random_graph, eps=0.1, kappa=4.0)
        exact = bfs_distances(small_random_graph, 0)
        for target, dg in exact.items():
            if target == 0:
                continue
            length = oracle.query_length(0, target)
            assert length >= dg  # a real walk can never beat the distance
            assert length <= oracle.alpha * dg + oracle.beta + 1e-9

    def test_path_length_matches_emulator_distance(self, grid6x6):
        oracle = PathReportingOracle(grid6x6, eps=0.1, kappa=4.0)
        emulator = oracle.emulator_result.emulator
        for target in (7, 21, 35):
            expected = emulator.dijkstra(0).get(target)
            assert oracle.query_length(0, target) == pytest.approx(expected)

    def test_disconnected_pair_returns_none(self, disconnected_graph):
        oracle = PathReportingOracle(disconnected_graph, eps=0.1, kappa=4.0)
        assert oracle.query_path(0, 7) is None
        assert oracle.query_length(0, 7) == float("inf")

    def test_out_of_range_rejected(self, path10):
        oracle = PathReportingOracle(path10, eps=0.1, kappa=4.0)
        with pytest.raises(ValueError):
            oracle.query_path(0, 10)

    def test_expansion_cache_reused_across_queries(self, grid6x6):
        oracle = PathReportingOracle(grid6x6, eps=0.1, kappa=4.0)
        oracle.query_path(0, 35)
        cache_size_after_first = len(oracle._expansion_cache)
        oracle.query_path(0, 35)
        assert len(oracle._expansion_cache) == cache_size_after_first

    def test_ultra_sparse_default_paths_on_a_ring_of_cliques(self):
        graph = generators.ring_of_cliques(6, 6)
        oracle = PathReportingOracle(graph, eps=0.1)
        exact = bfs_distances(graph, 0)
        path = oracle.query_path(0, graph.num_vertices - 1)
        assert path is not None
        assert _is_walk(graph, path)
        dg = exact[graph.num_vertices - 1]
        assert len(path) - 1 <= oracle.alpha * dg + oracle.beta
