"""Tests for the E8 ablation experiment driver."""

from __future__ import annotations

import pytest

from repro.experiments.ablation_experiment import (
    format_ablation_table,
    run_ablation_experiment,
)
from repro.experiments.workloads import workload_by_name


@pytest.fixture(scope="module")
def ablation_rows():
    workloads = [workload_by_name("erdos-renyi", 64, seed=3), workload_by_name("grid", 64)]
    return run_ablation_experiment(workloads, kappa=8)


class TestAblation:
    def test_ours_always_within_bound(self, ablation_rows):
        assert all(r.ours_within for r in ablation_rows)

    def test_no_buffer_never_sparser(self, ablation_rows):
        assert all(r.no_buffer >= r.ours for r in ablation_rows)

    def test_penalties_nonnegative_for_no_buffer(self, ablation_rows):
        assert all(r.no_buffer_penalty >= 0 for r in ablation_rows)

    def test_row_counts(self, ablation_rows):
        assert len(ablation_rows) == 2

    def test_table_renders(self, ablation_rows):
        table = format_ablation_table(ablation_rows)
        assert "E8" in table
        assert "no-buffer" in table

    def test_slowed_variant_built(self, ablation_rows):
        assert all(r.slowed_degrees > 0 for r in ablation_rows)
