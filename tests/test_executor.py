"""Tests for the sharded sweep executor and the content-addressed cache."""

from __future__ import annotations

import os
import pickle

import pytest

from repro.api import (
    BuildSpec,
    GridSweep,
    ResultCache,
    execute_sweep,
    get_builder,
    on_build,
    register_builder,
    remove_build_hook,
    resolve_cache,
    run_sweep,
    spec_fingerprint,
)
from repro.api.executor import GraphBaseline, verify_with_baseline
from repro.api.pipeline import format_sweep_table
from repro.graphs import generators
from repro.graphs.graph import Graph


@pytest.fixture
def grid16():
    return generators.grid_graph(4, 4)


@pytest.fixture
def small_sweep():
    return GridSweep(products=("emulator", "spanner"), methods=("centralized",))


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


def _record_key(record):
    """Everything about a record that must not depend on how it was built."""
    return (
        record.graph_name,
        record.spec,
        frozenset(record.result.edges),
        record.result.size,
        record.result.alpha,
        record.result.beta,
        record.verified,
    )


class TestContentHash:
    def test_equal_graphs_same_hash(self):
        a = Graph(4, [(0, 1), (1, 2), (2, 3)])
        b = Graph(4, [(2, 3), (0, 1), (1, 2)])  # different insertion order
        assert a.content_hash() == b.content_hash()

    def test_edge_change_changes_hash(self):
        a = Graph(4, [(0, 1), (1, 2)])
        b = Graph(4, [(0, 1), (1, 3)])
        assert a.content_hash() != b.content_hash()

    def test_vertex_count_changes_hash(self):
        assert Graph(3, [(0, 1)]).content_hash() != Graph(4, [(0, 1)]).content_hash()

    def test_mutation_changes_then_restores_hash(self):
        g = Graph(4, [(0, 1), (1, 2)])
        before = g.content_hash()
        g.add_edge(2, 3)
        assert g.content_hash() != before
        g.remove_edge(2, 3)
        assert g.content_hash() == before

    def test_copy_shares_hash(self):
        g = generators.grid_graph(3, 3)
        assert g.copy().content_hash() == g.content_hash()


class TestSpecFingerprint:
    def test_equal_specs_same_fingerprint(self):
        assert spec_fingerprint(BuildSpec(eps=0.1)) == spec_fingerprint(BuildSpec(eps=0.1))

    def test_every_parameter_participates(self):
        base = BuildSpec(product="emulator", method="fast", eps=0.01, kappa=4.0,
                         rho=0.45, seed=0)
        for change in ({"product": "hopset"}, {"method": "congest"}, {"eps": 0.02},
                       {"kappa": 3.0}, {"rho": 0.4}, {"seed": 7},
                       {"options": {"ruling_set_mode": "distributed"}}):
            assert spec_fingerprint(base.replace(**change)) != spec_fingerprint(base)

    def test_options_order_does_not_matter(self):
        a = BuildSpec(options={"a": 1, "b": 2})
        b = BuildSpec(options={"b": 2, "a": 1})
        assert spec_fingerprint(a) == spec_fingerprint(b)

    def test_nested_option_order_does_not_matter(self):
        a = BuildSpec(options={"cfg": {"x": 1, "y": 2}, "tags": (1, 2)})
        b = BuildSpec(options={"cfg": {"y": 2, "x": 1}, "tags": (1, 2)})
        assert a == b
        assert spec_fingerprint(a) == spec_fingerprint(b)
        c = BuildSpec(options={"cfg": {"x": 1, "y": 3}, "tags": (1, 2)})
        assert spec_fingerprint(a) != spec_fingerprint(c)

    def test_object_valued_options_are_uncacheable(self, cache):
        # An arbitrary object's repr may hide the state a builder reads;
        # fingerprinting it could serve stale cached results, so don't.
        class Opts:
            def __init__(self, depth):
                self.depth = depth

            def __repr__(self):
                return "Opts"  # deliberately state-hiding

        spec = BuildSpec(options={"o": Opts(2)})
        assert spec_fingerprint(spec) is None
        assert cache.key("deadbeef", spec) is None

    def test_explicit_schedule_is_uncacheable(self, cache):
        from repro.core.parameters import CentralizedSchedule

        spec = BuildSpec(schedule=CentralizedSchedule(n=16, eps=0.1, kappa=4.0))
        assert spec_fingerprint(spec) is None
        assert cache.key("deadbeef", spec) is None


class TestResultCache:
    def test_roundtrip(self, grid16, cache):
        from repro.api import build

        result = build(grid16, BuildSpec())
        key = cache.key(grid16.content_hash(), result.spec)
        assert cache.put(key, result)
        fetched = cache.get(key)
        assert fetched is not None
        assert fetched.size == result.size
        assert set(fetched.edges) == set(result.edges)
        assert cache.hits == 1 and cache.stores == 1 and len(cache) == 1

    def test_missing_key_is_miss(self, cache):
        assert cache.get("ab" + "0" * 62) is None
        assert cache.misses == 1

    def test_none_key_bypasses(self, cache):
        assert cache.get(None) is None
        assert not cache.put(None, object())
        assert cache.misses == 0 and cache.stores == 0

    def test_corrupted_entry_is_evicted_not_crashed(self, grid16, cache):
        from repro.api import build

        result = build(grid16, BuildSpec())
        key = cache.key(grid16.content_hash(), result.spec)
        cache.put(key, result)
        cache.path(key).write_bytes(b"this is not a pickle")
        assert cache.get(key) is None
        assert cache.evictions == 1
        assert not cache.path(key).exists()
        # The entry can be rebuilt and used again afterwards.
        assert cache.put(key, result)
        assert cache.get(key).size == result.size

    def test_wrong_type_entry_is_evicted(self, cache):
        key = "cd" + "1" * 62
        path = cache.path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(pickle.dumps({"not": "a result"}))
        assert cache.get(key) is None
        assert cache.evictions == 1

    def test_version_participates_in_key(self, tmp_path):
        spec = BuildSpec()
        a = ResultCache(tmp_path, version="1")
        b = ResultCache(tmp_path, version="2")
        assert a.key("hash", spec) != b.key("hash", spec)

    def test_clear(self, grid16, cache):
        from repro.api import build

        result = build(grid16, BuildSpec())
        cache.put(cache.key(grid16.content_hash(), result.spec), result)
        assert cache.clear() == 1
        assert len(cache) == 0

    def test_clear_sweeps_orphaned_tmp_files(self, grid16, cache):
        from repro.api import build

        result = build(grid16, BuildSpec())
        key = cache.key(grid16.content_hash(), result.spec)
        cache.put(key, result)
        orphan = cache.path(key).parent / "killed-writer.tmp"
        orphan.write_bytes(b"partial")
        cache.clear()
        assert not orphan.exists()

    def test_resolve_cache_forms(self, tmp_path):
        assert resolve_cache(None) is None
        assert resolve_cache(False) is None
        assert resolve_cache(True).directory.name == ".repro-cache"
        assert resolve_cache(tmp_path / "c").directory == tmp_path / "c"
        cache = ResultCache(tmp_path)
        assert resolve_cache(cache) is cache


class TestCacheEviction:
    """LRU capacity eviction (max_entries / max_bytes) on insert."""

    @staticmethod
    def _fill(cache, grid16, eps_values):
        from repro.api import build

        keys = []
        for eps in eps_values:
            result = build(grid16, BuildSpec(eps=eps))
            key = cache.key(grid16.content_hash(), result.spec)
            assert cache.put(key, result)
            keys.append(key)
        return keys

    @staticmethod
    def _age(cache, keys):
        """Give the entries strictly increasing mtimes (insert order)."""
        import os

        for index, key in enumerate(keys):
            os.utime(cache.path(key), (1_000_000 + index, 1_000_000 + index))

    def test_max_entries_evicts_least_recently_used(self, tmp_path, grid16):
        cache = ResultCache(tmp_path, max_entries=2)
        keys = self._fill(cache, grid16, [0.1, 0.2])
        self._age(cache, keys)
        extra = self._fill(cache, grid16, [0.3])
        assert len(cache) == 2
        assert cache.evictions == 1
        assert cache.get(keys[0]) is None  # the oldest entry went
        assert cache.get(keys[1]) is not None
        assert cache.get(extra[0]) is not None

    def test_get_refreshes_recency(self, tmp_path, grid16):
        cache = ResultCache(tmp_path, max_entries=2)
        keys = self._fill(cache, grid16, [0.1, 0.2])
        self._age(cache, keys)
        assert cache.get(keys[0]) is not None  # refresh: 0.2 is now LRU
        self._fill(cache, grid16, [0.3])
        assert cache.get(keys[0]) is not None
        assert cache.get(keys[1]) is None

    def test_max_bytes_bound(self, tmp_path, grid16):
        probe = ResultCache(tmp_path / "probe")
        [probe_key] = self._fill(probe, grid16, [0.1])
        entry_size = probe.path(probe_key).stat().st_size

        cache = ResultCache(tmp_path / "bounded", max_bytes=int(entry_size * 2.5))
        self._fill(cache, grid16, [0.1, 0.2, 0.3])
        assert len(cache) <= 2
        assert cache.evictions >= 1
        self._fill(cache, grid16, [0.4])
        assert len(cache) <= 2
        assert cache.evictions >= 2

    def test_just_written_entry_survives_tiny_bounds(self, tmp_path, grid16):
        cache = ResultCache(tmp_path, max_entries=1)
        keys = self._fill(cache, grid16, [0.1, 0.2, 0.3])
        assert len(cache) == 1
        assert cache.get(keys[-1]) is not None

    def test_unbounded_by_default(self, tmp_path, grid16):
        cache = ResultCache(tmp_path)
        self._fill(cache, grid16, [0.1, 0.2, 0.3])
        assert len(cache) == 3
        assert cache.evictions == 0

    def test_overwrite_does_not_inflate_tracking(self, tmp_path, grid16):
        from repro.api import build

        cache = ResultCache(tmp_path, max_entries=2)
        result = build(grid16, BuildSpec(eps=0.1))
        key = cache.key(grid16.content_hash(), result.spec)
        assert cache.put(key, result)
        assert cache.put(key, result)  # overwrite: replaces, does not add
        assert cache._approx_count == 1
        assert cache._approx_bytes == cache.path(key).stat().st_size
        assert len(cache) == 1
        assert cache.evictions == 0

    def test_corrupt_entry_eviction_updates_tracking(self, tmp_path, grid16):
        cache = ResultCache(tmp_path, max_entries=4)
        [key] = self._fill(cache, grid16, [0.1])
        size = cache.path(key).stat().st_size
        cache.path(key).write_bytes(b"x" * size)  # same size, corrupt payload
        assert cache.get(key) is None
        assert cache.evictions == 1
        assert cache._approx_count == 0
        assert cache._approx_bytes == 0

    def test_invalid_bounds_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            ResultCache(tmp_path, max_entries=0)
        with pytest.raises(ValueError):
            ResultCache(tmp_path, max_bytes=0)

    def test_sweep_executor_respects_the_bound(self, grid16, tmp_path):
        from repro.api import execute_sweep

        cache = ResultCache(tmp_path, max_entries=2)
        specs = [BuildSpec(eps=eps) for eps in (0.1, 0.2, 0.3, 0.4)]
        execute_sweep(grid16, specs, cache=cache)
        assert len(cache) == 2


class TestParallelExecution:
    def test_parallel_matches_serial(self, grid16, small_sweep):
        serial = run_sweep({"grid": grid16}, small_sweep, verify_pairs=20, workers=1)
        parallel = run_sweep({"grid": grid16}, small_sweep, verify_pairs=20, workers=2)
        assert [_record_key(r) for r in serial] == [_record_key(r) for r in parallel]

    def test_parallel_records_worker_pids(self, grid16, small_sweep):
        records = run_sweep({"grid": grid16}, small_sweep, workers=2)
        for record in records:
            assert "cache_hit" not in record.stats  # no cache was consulted
            assert not record.cache_hit
            assert isinstance(record.stats["worker"], int)
            assert record.stats["elapsed"] == record.result.elapsed

    def test_multiple_graphs_deterministic_order(self, small_sweep):
        graphs = {"a": generators.grid_graph(3, 3), "b": generators.grid_graph(4, 3)}
        records = run_sweep(graphs, small_sweep, workers=2)
        assert [r.graph_name for r in records] == ["a", "a", "b", "b"]

    def test_unpicklable_graph_falls_back_to_serial(self, small_sweep):
        class UnpicklableGraph(Graph):
            def __reduce__(self):
                raise pickle.PicklingError("deliberately unpicklable")

        g = UnpicklableGraph(9)
        for u, v in generators.grid_graph(3, 3).edges():
            g.add_edge(u, v)
        records = run_sweep({"g": g}, small_sweep, workers=2)
        assert len(records) == 2
        assert all(r.result.size > 0 for r in records)

    def test_on_build_hooks_replay_in_parent_for_worker_builds(self, grid16, small_sweep):
        events = []
        hook = on_build(events.append)
        try:
            records = run_sweep({"grid": grid16}, small_sweep, workers=2)
            assert len(events) == len(records)
            assert {e.spec for e in events} == {r.spec for r in records}
            assert all(e.elapsed == e.result.elapsed for e in events)
        finally:
            remove_build_hook(hook)

    def test_hooks_fire_exactly_once_per_build_across_processes(
        self, grid16, small_sweep, tmp_path
    ):
        # A hook with an externally visible side effect must fire once per
        # build even under fork-started pools (workers inherit the parent's
        # hook registry; the pool initializer clears it, the parent replays).
        log = tmp_path / "builds.log"

        def logging_hook(event):
            with open(log, "a") as handle:
                handle.write(f"{os.getpid()} {event.spec.product}\n")

        hook = on_build(logging_hook)
        try:
            records = run_sweep({"grid": grid16}, small_sweep, workers=2)
        finally:
            remove_build_hook(hook)
        lines = log.read_text().splitlines()
        assert len(lines) == len(records)
        assert {line.split()[0] for line in lines} == {str(os.getpid())}

    def test_unpicklable_result_is_rebuilt_serially(self, grid16):
        original = get_builder("emulator", "centralized")

        @register_builder("emulator", "centralized")
        def tainted_builder(graph, spec):
            raw = original.fn(graph, spec)
            raw.not_picklable = lambda: None
            return raw

        try:
            records = execute_sweep(
                {"g": grid16},
                [BuildSpec(), BuildSpec(eps=0.2)],
                workers=2,
            )
        finally:
            register_builder(original.product, original.method,
                             description=original.description)(original.fn)
        assert len(records) == 2
        assert all(r.result.size > 0 for r in records)


class TestCachedExecution:
    def test_second_run_performs_zero_builds(self, grid16, small_sweep, cache):
        calls = []
        hook = on_build(lambda event: calls.append(event.spec))
        try:
            first = run_sweep({"grid": grid16}, small_sweep, cache=cache, workers=1)
            assert len(calls) == len(first)
            assert all(r.stats["cache_hit"] is False for r in first)

            second = run_sweep({"grid": grid16}, small_sweep, cache=cache, workers=1)
            assert len(calls) == len(first)  # cache hits skip the builder entirely
            assert all(r.stats["cache_hit"] is True for r in second)
            assert all(r.stats["worker"] is None for r in second)
        finally:
            remove_build_hook(hook)
        assert [_record_key(r) for r in first] == [_record_key(r) for r in second]

    def test_cache_invalidated_when_graph_changes(self, grid16, small_sweep, cache):
        run_sweep({"grid": grid16}, small_sweep, cache=cache)
        changed = grid16.copy()
        changed.add_edge(0, 15)
        records = run_sweep({"grid": changed}, small_sweep, cache=cache)
        assert all(r.stats["cache_hit"] is False for r in records)

    def test_cache_invalidated_when_spec_changes(self, grid16, cache):
        run_sweep({"grid": grid16},
                  GridSweep(products=("emulator",), methods=("centralized",),
                            eps_values=(0.1,)),
                  cache=cache)
        records = run_sweep({"grid": grid16},
                            GridSweep(products=("emulator",), methods=("centralized",),
                                      eps_values=(0.2,)),
                            cache=cache)
        assert all(r.stats["cache_hit"] is False for r in records)

    def test_cache_invalidated_when_version_changes(self, grid16, small_sweep, tmp_path):
        run_sweep({"grid": grid16}, small_sweep,
                  cache=ResultCache(tmp_path, version="v1"))
        records = run_sweep({"grid": grid16}, small_sweep,
                            cache=ResultCache(tmp_path, version="v2"))
        assert all(r.stats["cache_hit"] is False for r in records)

    def test_corrupted_entries_rebuilt_by_sweep(self, grid16, small_sweep, cache):
        run_sweep({"grid": grid16}, small_sweep, cache=cache)
        for path in cache.directory.glob("??/*.pkl"):
            path.write_bytes(b"garbage")
        records = run_sweep({"grid": grid16}, small_sweep, cache=cache, verify_pairs=10)
        assert all(r.stats["cache_hit"] is False for r in records)
        assert all(r.verified for r in records)

    def test_cached_results_verify(self, grid16, small_sweep, cache):
        run_sweep({"grid": grid16}, small_sweep, cache=cache)
        records = run_sweep({"grid": grid16}, small_sweep, cache=cache, verify_pairs=20)
        assert all(r.cache_hit for r in records)
        assert all(r.verified for r in records)

    def test_uncacheable_spec_is_not_counted_as_a_miss(self, grid16, cache):
        from repro.core.parameters import CentralizedSchedule

        spec = BuildSpec(schedule=CentralizedSchedule(n=16, eps=0.1, kappa=4.0))
        records = execute_sweep({"g": grid16}, [spec], cache=cache)
        # The spec can never be cached, so it must not read as an eternal
        # miss in the stats or the sweep-table summary.
        assert "cache_hit" not in records[0].stats
        assert cache.stores == 0
        table = format_sweep_table(records)
        assert "miss(es)" not in table

    def test_parallel_run_with_cache(self, grid16, small_sweep, cache):
        first = run_sweep({"grid": grid16}, small_sweep, cache=cache, workers=2)
        assert cache.stores == len(first)
        second = run_sweep({"grid": grid16}, small_sweep, cache=cache, workers=2)
        assert all(r.cache_hit for r in second)
        assert cache.stores == len(first)  # nothing new written
        assert [_record_key(r) for r in first] == [_record_key(r) for r in second]


class TestBatchVerification:
    @pytest.mark.parametrize("product,method", [
        ("emulator", "centralized"),
        ("spanner", "centralized"),
        ("spanner", "fast"),
        ("hopset", "centralized"),
    ])
    def test_matches_unbatched_verify(self, grid16, product, method):
        from repro.api import build

        result = build(grid16, BuildSpec(product=product, method=method))
        baseline = GraphBaseline(grid16)
        batched = verify_with_baseline(result, baseline, sample_pairs=30)
        direct = result.verify(grid16, sample_pairs=30)
        assert batched.valid == direct.valid
        if product == "hopset":
            assert batched.worst_excess == direct.worst_excess
            assert batched.hopbound == direct.hopbound
        else:
            assert batched.pairs_checked == direct.pairs_checked
            assert batched.max_additive_error == direct.max_additive_error
            assert batched.max_multiplicative_stretch == direct.max_multiplicative_stretch

    def test_baseline_bfs_computed_once_per_source(self, grid16, monkeypatch):
        import repro.api.executor as executor_module

        calls = []
        real = executor_module.bfs_distances
        monkeypatch.setattr(executor_module, "bfs_distances",
                            lambda graph, source: calls.append(source) or real(graph, source))
        baseline = GraphBaseline(grid16)
        baseline.distances(0)
        baseline.distances(0)
        baseline.distances(1)
        assert calls == [0, 1]

    def test_verify_true_checks_all_pairs(self, grid16):
        sweep = GridSweep(products=("emulator",), methods=("centralized",))
        records = run_sweep({"grid": grid16}, sweep, verify=True)
        assert records[0].verified is True

    def test_verify_false_skips(self, grid16, small_sweep):
        records = run_sweep({"grid": grid16}, small_sweep, verify=False)
        assert all(r.verified is None for r in records)


class TestSweepTableSummary:
    def test_summary_line_reports_hits_and_misses(self, grid16, small_sweep, cache):
        run_sweep({"grid": grid16}, small_sweep, cache=cache)
        records = run_sweep({"grid": grid16}, small_sweep, cache=cache)
        table = format_sweep_table(records)
        assert "cache: 2 hit(s), 0 miss(es)" in table
        assert "total build time" in table

    def test_no_cache_segment_without_a_cache(self, grid16, small_sweep):
        records = run_sweep({"grid": grid16}, small_sweep)
        table = format_sweep_table(records)
        assert "total build time" in table
        assert "cache:" not in table  # no cache was consulted

    def test_no_summary_without_stats(self, grid16):
        from repro.api import build
        from repro.api.pipeline import SweepRecord

        record = SweepRecord(graph_name="g", spec=BuildSpec(),
                             result=build(grid16, BuildSpec()))
        table = format_sweep_table([record])
        assert "cache:" not in table
        assert "total build time" not in table


class TestSharedExplorations:
    """The exploration cache must be observationally transparent."""

    def test_records_identical_with_and_without_sharing(self, grid16):
        sweep = GridSweep(products=("emulator", "spanner"),
                          methods=("centralized", "fast"),
                          eps_values=(0.1, 0.05))
        shared = run_sweep({"grid": grid16}, sweep, verify=20)
        unshared = run_sweep({"grid": grid16}, sweep, verify=20,
                             share_explorations=False)
        assert [_record_key(r) for r in shared] == [_record_key(r) for r in unshared]
        assert [pickle.dumps(sorted(r.result.edges)) for r in shared] \
            == [pickle.dumps(sorted(r.result.edges)) for r in unshared]

    def test_parallel_matches_serial_with_sharing(self, grid16, small_sweep):
        serial = run_sweep({"grid": grid16}, small_sweep, verify=10)
        parallel = run_sweep({"grid": grid16}, small_sweep, verify=10, workers=2)
        assert [_record_key(r) for r in serial] == [_record_key(r) for r in parallel]

    def test_sharing_skips_repeated_explorations(self, grid16):
        from repro.graphs.shortest_paths import ExplorationCache

        cache = ExplorationCache(grid16)
        baseline = GraphBaseline(grid16, explorations=cache)
        first = baseline.distances(3)
        assert cache.stats()["misses"] == 1
        # A second baseline over the same cache reuses the exploration.
        other = GraphBaseline(grid16, explorations=cache)
        assert other.distances(3) == first
        assert cache.stats() == {"hits": 1, "misses": 1, "entries": 1}

    def test_exploration_cache_left_uninstalled_after_sweep(self, grid16, small_sweep):
        from repro.graphs import shortest_paths

        run_sweep({"grid": grid16}, small_sweep)
        assert shortest_paths._ACTIVE_CACHE is None
