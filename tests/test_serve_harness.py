"""Tests for the serving-layer load harness and its JSON report."""

from __future__ import annotations

import pytest

from repro.graphs import generators
from repro.serve import ServeSpec, load, nearest_rank_percentile, run_load_test
from repro.serve.harness import ServeReport


GRAPH = generators.connected_erdos_renyi(48, 0.1, seed=4)


class TestPercentile:
    def test_nearest_rank(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert nearest_rank_percentile(values, 0.50) == 2.0
        assert nearest_rank_percentile(values, 0.99) == 4.0
        assert nearest_rank_percentile(values, 1.0) == 4.0

    def test_empty_sample(self):
        assert nearest_rank_percentile([], 0.5) == 0.0

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            nearest_rank_percentile([1.0], 0.0)


class TestRunLoadTest:
    @pytest.fixture(scope="class")
    def report(self):
        return run_load_test(
            GRAPH, ServeSpec(), workload="zipf", num_queries=300, stretch_sample=60,
            seed=0,
        )

    def test_report_shape(self, report):
        assert report.backend == "emulator"
        assert report.workload == "zipf"
        assert report.num_queries == 300
        assert report.throughput_qps > 0
        assert report.elapsed_seconds > 0
        assert report.latency_p50_ms <= report.latency_p95_ms <= report.latency_p99_ms

    def test_guarantee_holds_on_the_sample(self, report):
        assert report.stretch_pairs_checked > 0
        assert report.stretch_violations == 0
        assert report.stretch_ok
        assert report.max_multiplicative_stretch >= 1.0
        assert report.max_multiplicative_stretch <= report.alpha + report.beta

    def test_engine_stats_embedded(self, report):
        assert report.engine_stats["queries"] >= report.num_queries
        assert report.engine_stats["oracle"]["backend"] == "emulator"

    def test_json_round_trip(self, report):
        assert ServeReport.from_json(report.to_json()) == report

    def test_dict_round_trip(self, report):
        assert ServeReport.from_dict(report.to_dict()) == report

    def test_summary_is_one_line(self, report):
        assert "\n" not in report.summary()
        assert "q/s" in report.summary()


class TestBackendsAndModes:
    def test_exact_backend_has_stretch_exactly_one(self):
        report = run_load_test(
            GRAPH, ServeSpec(backend="exact"), workload="uniform", num_queries=120,
            stretch_sample=40,
        )
        assert report.stretch_ok
        assert report.max_multiplicative_stretch == 1.0
        assert report.max_additive_error == 0.0

    def test_pre_loaded_engine_is_reused(self):
        engine = load(GRAPH, ServeSpec(backend="exact"))
        report = run_load_test(
            GRAPH, workload="uniform", num_queries=50, stretch_sample=10, engine=engine
        )
        assert report.backend == "exact"
        assert engine.queries >= 50

    def test_multi_worker_mode_reports_batched_latency(self):
        report = run_load_test(
            GRAPH, ServeSpec(), workload="mixed", num_queries=200, stretch_sample=20,
            workers=2,
        )
        assert report.workers == 2
        assert report.num_queries == 200
        assert report.stretch_ok

    def test_every_registered_backend_passes_the_harness_check(self):
        from repro.serve import available_oracles

        for backend in available_oracles():
            report = run_load_test(
                GRAPH, ServeSpec(backend=backend), workload="local", num_queries=80,
                stretch_sample=30,
            )
            assert report.stretch_ok, f"{backend}: {report.summary()}"
