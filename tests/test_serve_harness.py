"""Tests for the serving-layer load harness and its JSON report."""

from __future__ import annotations

import pytest

from repro.graphs import generators
from repro.serve import ServeSpec, load, nearest_rank_percentile, run_load_test
from repro.serve.harness import ServeReport


GRAPH = generators.connected_erdos_renyi(48, 0.1, seed=4)


class TestPercentile:
    def test_nearest_rank(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert nearest_rank_percentile(values, 0.50) == 2.0
        assert nearest_rank_percentile(values, 0.99) == 4.0
        assert nearest_rank_percentile(values, 1.0) == 4.0

    def test_empty_sample(self):
        assert nearest_rank_percentile([], 0.5) == 0.0

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            nearest_rank_percentile([1.0], 0.0)


class TestRunLoadTest:
    @pytest.fixture(scope="class")
    def report(self):
        return run_load_test(
            GRAPH, ServeSpec(), workload="zipf", num_queries=300, stretch_sample=60,
            seed=0,
        )

    def test_report_shape(self, report):
        assert report.backend == "emulator"
        assert report.workload == "zipf"
        assert report.num_queries == 300
        assert report.throughput_qps > 0
        assert report.elapsed_seconds > 0
        assert report.latency_p50_ms <= report.latency_p95_ms <= report.latency_p99_ms

    def test_guarantee_holds_on_the_sample(self, report):
        assert report.stretch_pairs_checked > 0
        assert report.stretch_violations == 0
        assert report.stretch_ok
        assert report.max_multiplicative_stretch >= 1.0
        assert report.max_multiplicative_stretch <= report.alpha + report.beta

    def test_engine_stats_embedded(self, report):
        # A fresh engine answered exactly the measured stream: the
        # snapshot excludes the stretch re-check's extra queries.
        assert report.engine_stats["queries"] == report.num_queries
        assert report.engine_stats["oracle"]["backend"] == "emulator"

    def test_json_round_trip(self, report):
        assert ServeReport.from_json(report.to_json()) == report

    def test_dict_round_trip(self, report):
        assert ServeReport.from_dict(report.to_dict()) == report

    def test_summary_is_one_line(self, report):
        assert "\n" not in report.summary()
        assert "q/s" in report.summary()


class TestBackendsAndModes:
    def test_exact_backend_has_stretch_exactly_one(self):
        report = run_load_test(
            GRAPH, ServeSpec(backend="exact"), workload="uniform", num_queries=120,
            stretch_sample=40,
        )
        assert report.stretch_ok
        assert report.max_multiplicative_stretch == 1.0
        assert report.max_additive_error == 0.0

    def test_pre_loaded_engine_is_reused(self):
        engine = load(GRAPH, ServeSpec(backend="exact"))
        report = run_load_test(
            GRAPH, workload="uniform", num_queries=50, stretch_sample=10, engine=engine
        )
        assert report.backend == "exact"
        assert engine.queries >= 50

    def test_engine_stats_are_deltas_for_a_prewarmed_engine(self):
        engine = load(GRAPH, ServeSpec(backend="exact"))
        engine.query(0, 5)
        engine.query(1, 7)
        report = run_load_test(
            GRAPH, workload="uniform", num_queries=30, stretch_sample=5, engine=engine
        )
        # Pre-stream traffic and the stretch re-check are both excluded.
        assert report.engine_stats["queries"] == 30

    def test_stretch_sample_zero_skips_the_recheck(self):
        report = run_load_test(
            GRAPH, ServeSpec(backend="exact"), workload="uniform", num_queries=40,
            stretch_sample=0,
        )
        assert report.stretch_pairs_checked == 0
        assert report.stretch_ok  # vacuously: nothing was checked

    def test_negative_stretch_sample_rejected(self):
        with pytest.raises(ValueError):
            run_load_test(
                GRAPH, ServeSpec(backend="exact"), num_queries=10, stretch_sample=-5
            )

    def test_pre_loaded_engine_keeps_its_workers_default(self):
        engine = load(GRAPH, ServeSpec(backend="exact", workers=2))
        report = run_load_test(
            GRAPH, workload="uniform", num_queries=60, stretch_sample=10, engine=engine
        )
        assert report.workers == 2  # from the engine, not the fallback spec

    def test_multi_worker_mode_reports_batched_latency(self):
        report = run_load_test(
            GRAPH, ServeSpec(), workload="mixed", num_queries=200, stretch_sample=20,
            workers=2,
        )
        assert report.workers == 2
        assert report.num_queries == 200
        assert report.stretch_ok

    def test_every_buildable_backend_passes_the_harness_check(self):
        from repro.serve import buildable_oracles

        for backend in buildable_oracles():
            report = run_load_test(
                GRAPH, ServeSpec(backend=backend), workload="local", num_queries=80,
                stretch_sample=30,
            )
            assert report.stretch_ok, f"{backend}: {report.summary()}"
