"""Equivalence and lifecycle tests for the flat-array CSR kernels.

The contract under test: every kernel backend produces *identical*
distances and origins to the original dict/deque implementations (kept in
:mod:`repro.graphs.shortest_paths` as the ``_dict_*`` reference
functions), on every graph shape the constructions meet — random,
disconnected, empty, single-vertex — and multi-source tie-breaking is
deterministic toward the smallest source ID on every backend.
"""

from __future__ import annotations

import math
import pickle
import random

import pytest

from repro.graphs import kernels
from repro.graphs.csr import CSRGraph, WeightedCSRGraph
from repro.graphs.graph import Graph
from repro.graphs.shortest_paths import (
    ExplorationCache,
    _dict_bounded_bfs,
    _dict_multi_source_bfs,
    bfs_distances,
    bounded_bfs,
    multi_source_bfs,
    shared_explorations,
)
from repro.graphs.weighted_graph import WeightedGraph
from repro.hopsets.bounded_hop import hop_limited_distances, union_with_graph

BACKENDS = kernels.available_backends()


@pytest.fixture(params=BACKENDS)
def backend(request):
    """Run the test once per importable kernel backend."""
    kernels.set_backend(request.param)
    yield request.param
    kernels.set_backend("auto")


def random_graph(n, avg_degree, seed):
    rng = random.Random(seed)
    g = Graph(n)
    target = min(n * (n - 1) // 2, int(n * avg_degree / 2))
    while g.num_edges < target:
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v:
            g.add_edge(u, v)
    return g


def disconnected_graph(seed):
    """Two random components plus isolated vertices."""
    rng = random.Random(seed)
    g = Graph(60)
    for lo, hi in ((0, 25), (25, 50)):  # vertices 50..59 stay isolated
        for _ in range(60):
            u, v = rng.randrange(lo, hi), rng.randrange(lo, hi)
            if u != v:
                g.add_edge(u, v)
    return g


GRAPH_CASES = [
    Graph(0),
    Graph(1),
    Graph(2, [(0, 1)]),
    Graph(5),  # edgeless
    Graph(6, [(i, i + 1) for i in range(5)]),  # path
    Graph(8, [(i, (i + 1) % 8) for i in range(8)]),  # cycle
    disconnected_graph(7),
    random_graph(40, 3.0, 11),
    random_graph(90, 6.0, 12),
    random_graph(150, 2.0, 13),
]


# ----------------------------------------------------------------------
# BFS equivalence
# ----------------------------------------------------------------------
def test_bfs_equivalence_randomized(backend):
    rng = random.Random(hash(backend) & 0xFFFF)
    for g in GRAPH_CASES:
        n = g.num_vertices
        sources = range(n) if n <= 8 else rng.sample(range(n), 8)
        for s in sources:
            for radius in (None, 0, 1, 2, 2.9, 5, float("inf")):
                assert bounded_bfs(g, s, radius) == _dict_bounded_bfs(g, s, radius), (
                    backend, n, s, radius,
                )


def test_bfs_kernel_direct_matches_reference(backend):
    g = random_graph(70, 4.0, 21)
    csr = g.csr()
    for s in (0, 13, 69):
        assert kernels.bfs_distances(csr, s) == _dict_bounded_bfs(g, s, None)
        floats = kernels.bfs_distances(csr, s, as_float=True)
        assert floats == {v: float(d) for v, d in _dict_bounded_bfs(g, s, None).items()}
        assert all(isinstance(v, float) for v in floats.values())


def test_multi_source_equivalence_randomized(backend):
    rng = random.Random(100 + len(backend))
    for g in GRAPH_CASES:
        n = g.num_vertices
        if n == 0:
            assert multi_source_bfs(g, []) == ({}, {})
            continue
        for trial in range(4):
            sources = rng.sample(range(n), min(n, 1 + trial))
            for radius in (None, 1, 3.5):
                got = multi_source_bfs(g, sources, radius)
                want = _dict_multi_source_bfs(g, sources, radius)
                assert got == want, (backend, n, sources, radius)


def test_multi_source_tie_breaks_toward_smallest_source(backend):
    # Even cycle: the vertex opposite two sources is equidistant from both.
    g = Graph(8, [(i, (i + 1) % 8) for i in range(8)])
    dist, origin = multi_source_bfs(g, [2, 6])
    assert dist[0] == 2 and dist[4] == 2
    assert origin[0] == 2 and origin[4] == 2  # ties -> smallest source ID
    # A star where every leaf ties between all sources placed on leaves.
    star = Graph(9, [(0, i) for i in range(1, 9)])
    dist, origin = multi_source_bfs(star, [3, 5, 7])
    assert origin[0] == 3
    assert all(origin[v] == 3 for v in (1, 2, 4, 6, 8))


def test_multi_source_deterministic_across_backends():
    g = random_graph(120, 5.0, 33)
    rng = random.Random(5)
    expected = None
    for name in BACKENDS:
        kernels.set_backend(name)
        try:
            rng_local = random.Random(5)
            runs = [
                multi_source_bfs(g, rng_local.sample(range(120), 7), r)
                for r in (None, 2, 6)
            ]
        finally:
            kernels.set_backend("auto")
        if expected is None:
            expected = runs
        else:
            assert runs == expected, name


def test_iteration_order_identical_across_backends():
    """Dict iteration order is canonical (distance, vertex) on every backend.

    Seeded consumers materialize BFS results into lists (e.g. the
    ``local`` workload generator samples a BFS ball by index), so the
    order itself — not just the mapping — must not depend on which
    backend answered.
    """
    g = random_graph(110, 5.0, 34)
    wg = random_weighted(110, 5.0, 35)
    expected = None
    for name in BACKENDS:
        kernels.set_backend(name)
        try:
            runs = (
                [list(bounded_bfs(g, s, r).items()) for s in (0, 7, 103)
                 for r in (None, 2, 4)],
                [list(wg.dijkstra(s).items()) for s in (0, 7)],
                [list(part.items())
                 for part in multi_source_bfs(g, [5, 40, 90])],
            )
        finally:
            kernels.set_backend("auto")
        if expected is None:
            expected = runs
        else:
            assert runs == expected, name
    # The canonical order really is (distance, vertex) ascending.
    items = expected[0][0]
    assert items == sorted(items, key=lambda kv: (kv[1], kv[0]))


def test_local_workload_reproducible_across_backends():
    from repro.serve.workloads import generate_queries

    g = random_graph(100, 4.0, 36)
    expected = None
    for name in BACKENDS:
        kernels.set_backend(name)
        try:
            queries = generate_queries(g, "local", 200, seed=9)
        finally:
            kernels.set_backend("auto")
        if expected is None:
            expected = queries
        else:
            assert queries == expected, name


# ----------------------------------------------------------------------
# Weighted kernels
# ----------------------------------------------------------------------
def random_weighted(n, avg_degree, seed):
    rng = random.Random(seed)
    g = WeightedGraph(n)
    target = min(n * (n - 1) // 2, int(n * avg_degree / 2))
    while g.num_edges < target:
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v:
            g.add_edge(u, v, rng.choice([1.0, 1.0, 2.0, 3.0, 7.5]))
    return g


def test_dijkstra_equivalence(backend):
    for n, seed in ((1, 0), (30, 1), (90, 2)):
        g = random_weighted(n, 4.0, seed)
        for s in range(0, n, max(1, n // 5)):
            assert g.dijkstra(s) == g._dict_dijkstra(s), (backend, n, s)
            assert g.dijkstra(s, max_distance=5.0) == g._dict_dijkstra(s, max_distance=5.0)


def test_dijkstra_disconnected(backend):
    g = WeightedGraph(5, [(0, 1, 2.0)])
    assert g.dijkstra(0) == {0: 0.0, 1: 2.0}
    assert g.dijkstra(4) == {4: 0.0}


def test_hop_limited_kernel_matches_scalar():
    graph = random_graph(80, 4.0, 44)
    overlay = random_weighted(80, 2.0, 45)
    union = union_with_graph(graph, overlay)
    kernels.set_backend("python")
    try:
        scalar = {t: hop_limited_distances(union, 3, t) for t in (0, 1, 2, 5, 12)}
    finally:
        kernels.set_backend("auto")
    if "numpy" not in BACKENDS:
        pytest.skip("numpy not importable; vectorized hop-limited kernel unavailable")
    kernels.set_backend("numpy")
    try:
        for t, want in scalar.items():
            got = hop_limited_distances(union, 3, t)
            assert got.keys() == want.keys(), t
            assert all(math.isclose(got[v], want[v], abs_tol=1e-9) for v in want), t
    finally:
        kernels.set_backend("auto")


# ----------------------------------------------------------------------
# Radius handling (satellite fix)
# ----------------------------------------------------------------------
def test_negative_radius_rejected():
    g = Graph(3, [(0, 1), (1, 2)])
    with pytest.raises(ValueError):
        bounded_bfs(g, 0, -1)
    with pytest.raises(ValueError):
        bounded_bfs(g, 0, -0.5)
    with pytest.raises(ValueError):
        multi_source_bfs(g, [0], -2)
    with pytest.raises(ValueError):
        kernels.normalize_radius(float("-inf"))
    with pytest.raises(ValueError):
        kernels.normalize_radius(float("nan"))


def test_float_radius_clamped_once():
    assert kernels.normalize_radius(2.9) == 2
    assert kernels.normalize_radius(3.0) == 3
    assert kernels.normalize_radius(0.0) == 0
    assert kernels.normalize_radius(None) is None
    assert kernels.normalize_radius(float("inf")) is None
    g = Graph(6, [(i, i + 1) for i in range(5)])
    assert bounded_bfs(g, 0, 2.9) == bounded_bfs(g, 0, 2)
    assert bounded_bfs(g, 0, float("inf")) == bfs_distances(g, 0)
    assert bounded_bfs(g, 0, 0) == {0: 0}


# ----------------------------------------------------------------------
# CSR snapshot lifecycle
# ----------------------------------------------------------------------
def test_csr_cached_and_invalidated_on_mutation():
    g = random_graph(25, 3.0, 55)
    snap = g.csr()
    assert g.csr() is snap  # memoized
    assert snap.num_vertices == 25 and snap.num_edges == g.num_edges
    g.add_edge(0, 24) if not g.has_edge(0, 24) else g.remove_edge(0, 24)
    assert g.csr() is not snap  # mutation dropped the snapshot
    assert bfs_distances(g, 0) == _dict_bounded_bfs(g, 0, None)


def test_csr_shared_by_copy():
    g = random_graph(20, 3.0, 56)
    snap = g.csr()
    clone = g.copy()
    assert clone.csr() is snap
    clone.add_edge(0, 19) if not clone.has_edge(0, 19) else clone.remove_edge(0, 19)
    assert clone.csr() is not snap
    assert g.csr() is snap  # the original is unaffected


def test_csr_rows_sorted():
    g = random_graph(30, 4.0, 57)
    snap = g.csr()
    for u in range(30):
        row = snap.indices[snap.indptr[u]:snap.indptr[u + 1]].tolist()
        assert row == sorted(g.neighbors(u))


def test_weighted_csr_invalidated_on_weight_reduction():
    g = WeightedGraph(3, [(0, 1, 5.0)])
    snap = g.csr()
    g.add_edge(0, 1, 9.0)  # kept minimum: no mutation
    assert g.csr() is snap
    g.add_edge(0, 1, 2.0)  # weight reduced: snapshot stale
    assert g.csr() is not snap
    assert g.dijkstra(0)[1] == 2.0


def test_graph_pickle_roundtrip_rebuilds_caches():
    g = random_graph(15, 3.0, 58)
    g.content_hash()
    g.csr()
    clone = pickle.loads(pickle.dumps(g))
    assert clone == g
    assert clone.content_hash() == g.content_hash()
    assert bfs_distances(clone, 0) == bfs_distances(g, 0)
    wg = random_weighted(15, 3.0, 59)
    wg.csr()
    wclone = pickle.loads(pickle.dumps(wg))
    assert wclone.dijkstra(0) == wg.dijkstra(0)


def test_csr_snapshot_pickles_without_views():
    g = random_graph(15, 3.0, 60)
    snap = g.csr()
    snap.adjacency()
    clone = pickle.loads(pickle.dumps(snap))
    assert isinstance(clone, CSRGraph)
    assert clone.indices == snap.indices and clone.indptr == snap.indptr
    wsnap = random_weighted(10, 2.0, 61).csr()
    wclone = pickle.loads(pickle.dumps(wsnap))
    assert isinstance(wclone, WeightedCSRGraph)
    assert wclone.weights == wsnap.weights


# ----------------------------------------------------------------------
# Memoized content hash (satellite)
# ----------------------------------------------------------------------
def test_content_hash_memoized_and_invalidated():
    g = random_graph(25, 3.0, 62)
    first = g.content_hash()
    assert g.content_hash() is first  # memoized, not recomputed
    u, v = 0, 24
    added = g.add_edge(u, v)
    if not added:
        g.remove_edge(u, v)
    changed = g.content_hash()
    assert changed != first
    # Restore the original edge set: the digest must match again.
    if added:
        g.remove_edge(u, v)
    else:
        g.add_edge(u, v)
    assert g.content_hash() == first
    # And always equals a fresh graph with the same content.
    fresh = Graph(25, list(g.edges()))
    assert fresh.content_hash() == g.content_hash()


def test_content_hash_ignores_memo_on_copy_mutation():
    g = random_graph(12, 2.0, 63)
    g.content_hash()
    clone = g.copy()
    assert clone.content_hash() == g.content_hash()
    clone.add_edge(0, 11) if not clone.has_edge(0, 11) else clone.remove_edge(0, 11)
    assert clone.content_hash() != g.content_hash()


# ----------------------------------------------------------------------
# Exploration cache
# ----------------------------------------------------------------------
def test_exploration_cache_hits_and_copies():
    g = random_graph(40, 3.0, 64)
    cache = ExplorationCache(g)
    with shared_explorations(cache):
        first = bounded_bfs(g, 3, 2)
        second = bounded_bfs(g, 3, 2.9)  # clamps to the same radius
        assert cache.stats() == {"hits": 1, "misses": 1, "entries": 1}
        assert first == second and first is not second
        first[999] = 999  # mutating a returned copy must not poison the store
        assert bounded_bfs(g, 3, 2) == second
        dist_a, orig_a = multi_source_bfs(g, [1, 5], 3)
        dist_b, orig_b = multi_source_bfs(g, [5, 1], 3.5)
        assert (dist_a, orig_a) == (dist_b, orig_b)
    assert bounded_bfs(g, 3, 2) == second  # uninstalled: straight computation


def test_exploration_cache_only_serves_its_graph():
    g = random_graph(30, 3.0, 65)
    other = random_graph(30, 3.0, 66)
    cache = ExplorationCache(g)
    with shared_explorations(cache):
        bounded_bfs(g, 0, 2)
        bounded_bfs(other, 0, 2)
    assert cache.stats()["misses"] == 1  # the other graph never touched it


def test_exploration_cache_bounded():
    g = random_graph(30, 3.0, 67)
    cache = ExplorationCache(g, max_entries=3)
    with shared_explorations(cache):
        for s in range(6):
            bounded_bfs(g, s, 1)
    assert cache.stats()["entries"] == 3
    with pytest.raises(ValueError):
        ExplorationCache(g, max_entries=0)


def test_shared_explorations_accepts_none():
    g = Graph(2, [(0, 1)])
    with shared_explorations(None) as installed:
        assert installed is None
        assert bfs_distances(g, 0) == {0: 0, 1: 1}


# ----------------------------------------------------------------------
# Backend plumbing
# ----------------------------------------------------------------------
def test_backend_selection_errors():
    with pytest.raises(ValueError):
        kernels.set_backend("fortran")
    assert kernels.get_backend() == "auto"
    assert "python" in kernels.available_backends()


def test_source_validation(backend):
    g = Graph(3, [(0, 1)])
    with pytest.raises(ValueError):
        bounded_bfs(g, 7, None)
    with pytest.raises(ValueError):
        multi_source_bfs(g, [0, 9])
    with pytest.raises(ValueError):
        kernels.bfs_distances(g.csr(), -1)
