"""Tests for scripts/check_bench_regression.py (the CI benchmark gate)."""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

_SCRIPT = Path(__file__).resolve().parents[1] / "scripts" / "check_bench_regression.py"


@pytest.fixture(scope="module")
def checker():
    spec = importlib.util.spec_from_file_location("check_bench_regression", _SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _write(path, payload):
    path.write_text(json.dumps(payload))
    return str(path)


def _pytest_benchmark_json(means):
    """The schema pytest-benchmark emits with --benchmark-json."""
    return {
        "benchmarks": [
            {"fullname": name, "stats": {"mean": mean, "stddev": 0.0}}
            for name, mean in means.items()
        ]
    }


class TestLoadMeans:
    def test_pytest_benchmark_schema(self, checker, tmp_path):
        path = _write(tmp_path / "bench.json",
                      _pytest_benchmark_json({"bench::a": 0.5, "bench::b": 0.01}))
        assert checker.load_means(path) == {"bench::a": 0.5, "bench::b": 0.01}

    def test_flat_baseline_schema(self, checker, tmp_path):
        path = _write(tmp_path / "baseline.json",
                      {"tier": "small", "benchmarks": {"bench::a": 0.25}})
        assert checker.load_means(path) == {"bench::a": 0.25}


class TestFindRegressions:
    def test_no_regression_within_threshold(self, checker):
        assert checker.find_regressions(
            {"a": 0.19}, {"a": 0.10}, threshold=2.0) == []

    def test_injected_3x_slowdown_detected(self, checker):
        regressions = checker.find_regressions(
            {"a": 0.30, "b": 0.10}, {"a": 0.10, "b": 0.10}, threshold=2.0)
        assert [name for name, _, _, _ in regressions] == ["a"]
        assert regressions[0][3] == pytest.approx(3.0)

    def test_missing_benchmarks_do_not_fail(self, checker):
        assert checker.find_regressions({"new": 9.9}, {"old": 0.1}, threshold=2.0) == []

    def test_zero_baseline_ignored(self, checker):
        assert checker.find_regressions({"a": 1.0}, {"a": 0.0}, threshold=2.0) == []

    def test_sub_floor_baselines_exempt(self, checker):
        # Sub-millisecond ratios measure machine noise, not the code.
        assert checker.find_regressions(
            {"a": 0.004, "b": 0.05}, {"a": 0.001, "b": 0.01},
            threshold=2.0, min_seconds=0.005) == [("b", 0.01, 0.05, 5.0)]


class TestMain:
    def test_exit_zero_when_clean(self, checker, tmp_path, capsys):
        bench = _write(tmp_path / "bench.json", _pytest_benchmark_json({"a": 0.11}))
        baseline = _write(tmp_path / "baseline.json", {"benchmarks": {"a": 0.10}})
        assert checker.main([bench, baseline]) == 0
        assert "OK" in capsys.readouterr().out

    def test_exit_nonzero_on_injected_3x_slowdown(self, checker, tmp_path, capsys):
        bench = _write(tmp_path / "bench.json", _pytest_benchmark_json({"a": 0.30}))
        baseline = _write(tmp_path / "baseline.json", {"benchmarks": {"a": 0.10}})
        assert checker.main([bench, baseline]) == 1
        out = capsys.readouterr().out
        assert "FAIL" in out and "3.00x" in out

    def test_threshold_flag(self, checker, tmp_path):
        bench = _write(tmp_path / "bench.json", _pytest_benchmark_json({"a": 0.30}))
        baseline = _write(tmp_path / "baseline.json", {"benchmarks": {"a": 0.10}})
        assert checker.main([bench, baseline, "--threshold", "4.0"]) == 0

    def test_checked_in_baseline_matches_current_suite(self, checker, tmp_path):
        """The real baseline.json stays loadable and regression-free vs itself."""
        baseline_path = _SCRIPT.parents[1] / "benchmarks" / "baseline.json"
        means = checker.load_means(str(baseline_path))
        assert means, "benchmarks/baseline.json must not be empty"
        bench = _write(tmp_path / "bench.json", _pytest_benchmark_json(means))
        assert checker.main([bench, str(baseline_path)]) == 0
