"""Tests for the serving-layer query-stream generators."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.graphs import generators
from repro.graphs.shortest_paths import bfs_distances
from repro.serve import available_workloads, generate_queries


GRAPH = generators.connected_erdos_renyi(64, 0.08, seed=9)


class TestCommonProperties:
    @pytest.mark.parametrize("workload", available_workloads())
    def test_streams_are_seed_deterministic(self, workload):
        a = generate_queries(GRAPH, workload, 200, seed=3)
        b = generate_queries(GRAPH, workload, 200, seed=3)
        assert a == b

    @pytest.mark.parametrize("workload", available_workloads())
    def test_different_seeds_differ(self, workload):
        a = generate_queries(GRAPH, workload, 200, seed=1)
        b = generate_queries(GRAPH, workload, 200, seed=2)
        assert a != b

    @pytest.mark.parametrize("workload", available_workloads())
    def test_pairs_are_valid_vertices(self, workload):
        n = GRAPH.num_vertices
        pairs = generate_queries(GRAPH, workload, 300, seed=0)
        assert len(pairs) == 300
        for u, v in pairs:
            assert 0 <= u < n
            assert 0 <= v < n
            assert u != v

    def test_zero_queries(self):
        assert generate_queries(GRAPH, "uniform", 0) == []

    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError, match="unknown query workload"):
            generate_queries(GRAPH, "nonsense", 10)

    def test_tiny_graph_rejected(self):
        from repro.graphs.graph import Graph

        with pytest.raises(ValueError):
            generate_queries(Graph(1), "uniform", 10)


class TestShapes:
    def test_zipf_sources_are_skewed(self):
        pairs = generate_queries(GRAPH, "zipf", 2000, seed=0)
        counts = Counter(u for u, _ in pairs)
        uniform_share = 2000 / GRAPH.num_vertices
        # The hottest source is far above the uniform expectation.
        assert counts.most_common(1)[0][1] > 3 * uniform_share

    def test_local_pairs_stay_in_the_ball(self):
        radius = 3
        pairs = generate_queries(GRAPH, "local", 150, seed=0, radius=radius)
        for u, v in pairs:
            assert bfs_distances(GRAPH, u).get(v, float("inf")) <= radius

    def test_local_falls_back_on_isolated_sources(self):
        from repro.graphs.graph import Graph

        isolated = Graph(5)  # no edges at all: every ball is empty
        pairs = generate_queries(isolated, "local", 50, seed=0)
        assert len(pairs) == 50

    def test_mixed_stream_re_reads_a_hot_set(self):
        pairs = generate_queries(GRAPH, "mixed", 500, seed=0)
        # Read-mostly traffic: far fewer distinct pairs than queries.
        assert len(set(pairs)) < len(pairs) / 2

    def test_generator_options_validated(self):
        with pytest.raises(ValueError):
            generate_queries(GRAPH, "zipf", 10, exponent=0.0)
        with pytest.raises(ValueError):
            generate_queries(GRAPH, "local", 10, radius=0)
        with pytest.raises(ValueError):
            generate_queries(GRAPH, "mixed", 10, hot_fraction=1.5)
        with pytest.raises(ValueError):
            generate_queries(GRAPH, "mixed", 10, hot_set_size=0)


class TestWorkloadProfiles:
    def test_profile_counts_only_the_source_side(self):
        from repro.serve import profile

        prof = profile([(0, 1), (0, 2), (3, 0), (3, 1), (3, 2)])
        assert prof.counts == {0: 2, 3: 3}
        assert prof.total_queries == 5
        assert len(prof) == 2

    def test_top_sources_is_deterministic_under_ties(self):
        from repro.serve import profile

        prof = profile([(5, 0), (2, 0), (5, 1), (2, 1), (9, 0)])
        # 5 and 2 tie at two appearances: smaller vertex id first.
        assert prof.top_sources() == [2, 5, 9]
        assert prof.top_sources(2) == [2, 5]
        assert prof.top_sources(0) == []
        with pytest.raises(ValueError):
            prof.top_sources(-1)

    def test_json_round_trip(self):
        from repro.serve import WorkloadProfile, generate_queries, profile

        prof = profile(generate_queries(GRAPH, "zipf", 200, seed=3))
        clone = WorkloadProfile.from_json(prof.to_json())
        assert clone == prof
        assert clone.top_sources(10) == prof.top_sources(10)

    def test_save_load_round_trip(self, tmp_path):
        from repro.serve import WorkloadProfile, profile

        prof = profile([(1, 2)] * 7 + [(4, 5)] * 3)
        path = tmp_path / "profile.json"
        prof.save(str(path))
        assert WorkloadProfile.load(str(path)) == prof

    def test_zero_counts_are_dropped_and_negatives_rejected(self):
        from repro.serve import WorkloadProfile

        prof = WorkloadProfile(counts={1: 0, 2: 5}, total_queries=5)
        assert prof.counts == {2: 5}
        with pytest.raises(ValueError):
            WorkloadProfile(counts={1: -1}, total_queries=0)
        with pytest.raises(ValueError):
            WorkloadProfile(counts={}, total_queries=-1)

    def test_profile_of_a_zipf_stream_is_skewed(self):
        from repro.serve import generate_queries, profile

        prof = profile(generate_queries(GRAPH, "zipf", 500, seed=0))
        hot, cold = prof.top_sources()[0], prof.top_sources()[-1]
        assert prof.counts[hot] > prof.counts[cold]

    def test_prewarm_from_profile_preloads_an_engine(self):
        from repro.serve import ServeSpec, generate_queries, load, profile

        queries = generate_queries(GRAPH, "zipf", 300, seed=2)
        prof = profile(queries)
        engine = load(GRAPH, ServeSpec(backend="exact"))
        warmed = engine.prewarm(prof.top_sources(8))
        assert warmed == 8
        stats = engine.stats()
        assert stats["prewarmed_sources"] == 8
        assert stats["cached_sources"] == 8
        assert stats["cache_misses"] == 0  # warm-up is not miss traffic
        engine.query(prof.top_sources(1)[0], 0)
        assert engine.stats()["cache_hits"] == 1
