"""Tests for the Section 4 near-additive spanner (centralized simulation)."""

from __future__ import annotations

import pytest

from repro.analysis.validation import verify_spanner
from repro.core.spanner import NearAdditiveSpannerBuilder, build_near_additive_spanner
from repro.core.parameters import SpannerSchedule, size_bound
from repro.graphs import generators
from repro.graphs.graph import Graph


class TestSubgraphProperty:
    def test_spanner_is_subgraph(self, random_graph):
        result = build_near_additive_spanner(random_graph, eps=0.01, kappa=4, rho=0.45)
        assert result.is_subgraph_of(random_graph)

    def test_spanner_is_subgraph_dense(self, clique8):
        result = build_near_additive_spanner(clique8, eps=0.01, kappa=2, rho=0.5)
        assert result.is_subgraph_of(clique8)

    def test_spanner_spans_connected_graph(self, random_graph):
        # A valid (alpha, beta)-spanner of a connected graph must itself
        # connect every pair (finite stretch), hence be connected.
        result = build_near_additive_spanner(random_graph, eps=0.01, kappa=4, rho=0.45)
        assert result.spanner.is_connected()

    def test_empty_graph(self):
        result = build_near_additive_spanner(Graph(3), eps=0.01, kappa=4, rho=0.45)
        assert result.num_edges == 0

    def test_disconnected_graph(self, disconnected_graph):
        result = build_near_additive_spanner(disconnected_graph, eps=0.01, kappa=4, rho=0.45)
        assert result.is_subgraph_of(disconnected_graph)
        # Components must be preserved: same number of connected components.
        assert len(result.spanner.connected_components()) == len(
            disconnected_graph.connected_components()
        )


class TestStretch:
    @pytest.mark.parametrize("kappa", [3, 4, 8])
    def test_guarantee_random(self, random_graph, kappa):
        result = build_near_additive_spanner(random_graph, eps=0.01, kappa=kappa, rho=0.45)
        report = verify_spanner(random_graph, result.spanner, result.alpha, result.beta)
        assert report.valid

    def test_guarantee_grid(self, grid6x6):
        result = build_near_additive_spanner(grid6x6, eps=0.01, kappa=4, rho=0.45)
        report = verify_spanner(grid6x6, result.spanner, result.alpha, result.beta)
        assert report.valid

    def test_guarantee_ring_of_cliques(self):
        g = generators.ring_of_cliques(6, 6)
        result = build_near_additive_spanner(g, eps=0.01, kappa=4, rho=0.45)
        report = verify_spanner(g, result.spanner, result.alpha, result.beta)
        assert report.valid

    def test_spanner_distances_at_least_graph_distances(self, small_random_graph):
        # Trivially true for subgraphs, but exercises as_weighted().
        from repro.analysis.validation import verify_no_shortening

        result = build_near_additive_spanner(small_random_graph, eps=0.01, kappa=4, rho=0.45)
        assert verify_no_shortening(small_random_graph, result.as_weighted(), sample_pairs=None)


class TestSize:
    def test_size_close_to_bound(self, random_graph):
        result = build_near_additive_spanner(random_graph, eps=0.01, kappa=4, rho=0.45)
        n = random_graph.num_vertices
        # Corollary 4.4 gives O(n^(1+1/kappa)); check with a small constant.
        assert result.num_edges <= 4 * size_bound(n, 4)

    def test_sparser_than_input_on_dense_graph(self):
        g = generators.erdos_renyi(60, 0.4, seed=2)
        result = build_near_additive_spanner(g, eps=0.01, kappa=3, rho=0.45)
        assert result.num_edges < g.num_edges

    def test_edge_breakdown_sums(self, random_graph):
        result = build_near_additive_spanner(random_graph, eps=0.01, kappa=4, rho=0.45)
        assert (result.superclustering_edges + result.interconnection_edges
                >= result.num_edges)

    def test_superclustering_edges_bounded_by_forest_per_phase(self, random_graph):
        # Each phase's superclustering edges form (part of) a forest.
        result = build_near_additive_spanner(random_graph, eps=0.01, kappa=4, rho=0.45)
        n = random_graph.num_vertices
        for stats in result.phase_stats:
            assert stats.superclustering_edges <= n - 1


class TestBuilderApi:
    def test_schedule_mismatch_rejected(self, path10):
        schedule = SpannerSchedule(n=55, eps=0.01, kappa=4, rho=0.45)
        with pytest.raises(ValueError):
            NearAdditiveSpannerBuilder(path10, schedule=schedule)

    def test_as_weighted_unit_weights(self, path10):
        result = build_near_additive_spanner(path10, eps=0.01, kappa=4, rho=0.45)
        weighted = result.as_weighted()
        for _, _, w in weighted.edges():
            assert w == 1.0

    def test_deterministic(self, random_graph):
        r1 = build_near_additive_spanner(random_graph, eps=0.01, kappa=4, rho=0.45)
        r2 = build_near_additive_spanner(random_graph, eps=0.01, kappa=4, rho=0.45)
        assert sorted(r1.spanner.edges()) == sorted(r2.spanner.edges())

    def test_result_exposes_schedule_guarantees(self, path10):
        result = build_near_additive_spanner(path10, eps=0.01, kappa=4, rho=0.45)
        assert result.alpha == result.schedule.alpha
        assert result.beta == result.schedule.beta
