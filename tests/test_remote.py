"""Tests for the remote-proxy oracle (protocol conformance, failure modes).

Daemons bind port 0 (ephemeral) and run in-process — CONTRIBUTING.md.
"""

from __future__ import annotations

import pytest

from repro.graphs import generators
from repro.serve import (
    DistanceOracle,
    OracleDaemon,
    RemoteOracle,
    RemoteOracleError,
    ServeSpec,
    generate_queries,
    load,
    run_load_test,
)


GRAPH = generators.connected_erdos_renyi(48, 0.1, seed=7)


@pytest.fixture(scope="module")
def daemon():
    with OracleDaemon(port=0) as d:
        d.add_oracle("default", GRAPH, ServeSpec(backend="exact"))
        d.start()
        yield d


class TestProtocolConformance:
    def test_satisfies_the_distance_oracle_protocol(self, daemon):
        remote = RemoteOracle(daemon.url)
        assert isinstance(remote, DistanceOracle)

    def test_handshake_caches_the_daemon_metadata(self, daemon):
        remote = RemoteOracle(daemon.url)
        local = load(GRAPH, ServeSpec(backend="exact"))
        assert remote.alpha == local.alpha
        assert remote.beta == local.beta
        assert remote.num_vertices == GRAPH.num_vertices
        assert remote.space_in_edges == local.space_in_edges
        assert remote.oracle_name == "default"

    def test_local_error_types_survive_the_wire(self, daemon):
        remote = RemoteOracle(daemon.url)
        with pytest.raises(ValueError):
            remote.query(0, 99999)  # out of range -> daemon 400 -> ValueError
        with pytest.raises(KeyError):
            RemoteOracle(daemon.url, oracle="nonsense")  # daemon 404 -> KeyError

    def test_stats_are_local_and_count_transport_activity(self, daemon):
        remote = RemoteOracle(daemon.url)
        remote.query(0, 1)
        stats = remote.stats()
        assert stats["backend"] == "remote"
        assert stats["requests"] == 2  # handshake + query
        assert stats["retried_requests"] == 0
        assert stats["reconnects"] == 1  # one persistent connection, reused

    def test_registry_path_builds_a_served_engine(self, daemon):
        spec = ServeSpec(backend="remote", options={"url": daemon.url})
        engine = load(GRAPH, spec)
        local = load(GRAPH, ServeSpec(backend="exact"))
        pairs = generate_queries(GRAPH, "uniform", 40, seed=3)
        assert engine.query_batch(pairs) == local.query_batch(pairs)

    def test_registry_path_requires_a_url(self):
        with pytest.raises(ValueError, match="url"):
            load(GRAPH, ServeSpec(backend="remote"))

    def test_registry_path_rejects_a_mismatched_graph(self, daemon):
        other = generators.connected_erdos_renyi(20, 0.2, seed=1)
        with pytest.raises(ValueError, match="vertices"):
            load(other, ServeSpec(backend="remote", options={"url": daemon.url}))

    def test_composes_with_the_load_harness(self, daemon):
        report = run_load_test(
            GRAPH,
            ServeSpec(backend="remote", options={"url": daemon.url}),
            workload="zipf",
            num_queries=100,
            stretch_sample=30,
        )
        assert report.stretch_ok
        assert report.num_queries == 100

    def test_pickles_without_its_connection(self, daemon):
        import pickle

        remote = RemoteOracle(daemon.url)
        remote.query(0, 1)
        clone = pickle.loads(pickle.dumps(remote))
        assert clone.query(0, 1) == remote.query(0, 1)
        assert clone.num_vertices == remote.num_vertices


class TestValidation:
    def test_url_validation(self):
        with pytest.raises(ValueError, match="http"):
            RemoteOracle("ftp://example.com")
        with pytest.raises(ValueError, match="host"):
            RemoteOracle("http://")
        with pytest.raises(ValueError, match="retries"):
            RemoteOracle("http://127.0.0.1:1", retries=-1)
        with pytest.raises(ValueError, match="timeout"):
            RemoteOracle("http://127.0.0.1:1", timeout=0)
        with pytest.raises(ValueError, match="backoff"):
            RemoteOracle("http://127.0.0.1:1", backoff=-0.1)


class TestDegradation:
    """No bare transport error ever escapes; the typed error carries context."""

    def test_connection_refused_raises_the_typed_error(self):
        # Bind-and-close to get a port nothing listens on.
        probe = OracleDaemon(port=0)
        dead_url = probe.url
        probe.close()
        with pytest.raises(RemoteOracleError, match="unreachable"):
            RemoteOracle(dead_url, retries=1, backoff=0.001)

    def test_daemon_killed_mid_stream_raises_the_typed_error(self):
        daemon = OracleDaemon(port=0)
        daemon.add_oracle("default", GRAPH, ServeSpec(backend="exact"))
        daemon.start()
        remote = RemoteOracle(daemon.url, retries=2, backoff=0.001)
        queries = generate_queries(GRAPH, "uniform", 50, seed=6)
        answered = 0
        try:
            for index, (u, v) in enumerate(queries):
                if index == 10:
                    daemon.close()  # the daemon dies mid-stream
                remote.query(u, v)
                answered += 1
        except RemoteOracleError as error:
            assert "attempt" in str(error)
            assert error.__cause__ is not None  # the transport error is chained
        else:  # pragma: no cover
            pytest.fail("expected RemoteOracleError after the daemon died")
        assert answered >= 10  # everything before the kill was answered
        # Retries were spent before giving up.
        assert remote.stats()["retried_requests"] >= 1

    def test_recovers_when_a_daemon_returns_on_the_same_port(self):
        daemon = OracleDaemon(port=0)
        daemon.add_oracle("default", GRAPH, ServeSpec(backend="exact"))
        daemon.start()
        port = daemon.port
        remote = RemoteOracle(daemon.url, retries=2, backoff=0.001)
        before = remote.query(0, 1)
        daemon.close()
        with pytest.raises(RemoteOracleError):
            remote.query(0, 1)
        # A replacement daemon on the same port: the client reconnects.
        with OracleDaemon(port=port) as revived:
            revived.add_oracle("default", GRAPH, ServeSpec(backend="exact"))
            revived.start()
            assert remote.query(0, 1) == before
            assert remote.stats()["reconnects"] >= 2
