"""Tests for the ASCII plotting helpers."""

from __future__ import annotations

import pytest

from repro.analysis.plotting import ascii_multi_series, ascii_scatter


class TestAsciiScatter:
    def test_contains_all_axis_labels_and_title(self):
        plot = ascii_scatter([1, 2, 3], [1, 4, 9], x_label="n", y_label="edges",
                             title="growth")
        assert "growth" in plot
        assert "n" in plot.splitlines()[-2]
        assert "legend:" in plot.splitlines()[-1]

    def test_plot_dimensions(self):
        plot = ascii_scatter([1, 2], [1, 2], width=30, height=10)
        # height canvas rows + axis + x labels + footer + legend (+ no title)
        assert len(plot.splitlines()) == 10 + 4

    def test_extreme_points_land_on_plot_corners(self):
        plot = ascii_scatter([0, 100], [0, 100], width=20, height=5)
        rows = plot.splitlines()
        assert rows[0].rstrip().endswith("o")       # max point, top-right
        assert rows[4].split("|")[1][0] == "o"      # min point, bottom-left

    def test_log_scale_requires_positive_values(self):
        with pytest.raises(ValueError):
            ascii_scatter([0, 1], [1, 2], logx=True)

    def test_log_scale_annotated_in_footer(self):
        plot = ascii_scatter([1, 10, 100], [1, 2, 3], logx=True)
        assert "log10" in plot


class TestAsciiMultiSeries:
    def test_each_series_gets_its_own_marker(self):
        plot = ascii_multi_series(
            {"ours": [(1, 1), (2, 2)], "baseline": [(1, 2), (2, 4)]},
            width=30,
            height=8,
        )
        legend = plot.splitlines()[-1]
        assert "ours" in legend and "baseline" in legend
        markers = [part.strip().split(" = ")[0] for part in legend[len("legend: "):].split("  ")]
        assert len(set(markers)) == 2

    def test_constant_series_does_not_crash(self):
        plot = ascii_multi_series({"flat": [(1, 5), (2, 5), (3, 5)]})
        assert "flat" in plot

    def test_empty_series_dict_rejected(self):
        with pytest.raises(ValueError):
            ascii_multi_series({})

    def test_series_without_points_rejected(self):
        with pytest.raises(ValueError):
            ascii_multi_series({"empty": []})
