"""Property-based tests (hypothesis) for the core invariants.

These check the paper's headline claims on randomly generated graphs and
parameters:

* the emulator never has more than ``n^(1+1/kappa)`` edges;
* the emulator never shortens a distance;
* the ``(alpha, beta)`` guarantee holds;
* the charging invariants of the size proof hold;
* spanners are always subgraphs;
* ruling sets always satisfy both defining properties;
* the popular-cluster detection matches the brute-force ground truth.
"""

from __future__ import annotations

import math

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.analysis.validation import verify_emulator
from repro.congest.bellman_ford import detect_popular_clusters
from repro.congest.ruling_sets import greedy_ruling_set, verify_ruling_set
from repro.core.emulator import build_emulator
from repro.core.parameters import CentralizedSchedule, size_bound
from repro.core.spanner import build_near_additive_spanner
from repro.graphs.graph import Graph
from repro.graphs.shortest_paths import bfs_distances

SETTINGS = dict(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@st.composite
def random_graphs(draw, min_vertices=2, max_vertices=36):
    """A random simple graph given by an adjacency bitmap."""
    n = draw(st.integers(min_value=min_vertices, max_value=max_vertices))
    possible_edges = [(u, v) for u in range(n) for v in range(u + 1, n)]
    edge_flags = draw(
        st.lists(st.booleans(), min_size=len(possible_edges), max_size=len(possible_edges))
    )
    edges = [e for e, keep in zip(possible_edges, edge_flags) if keep]
    return Graph(n, edges)


@st.composite
def connected_graphs(draw, min_vertices=2, max_vertices=30):
    """A connected random graph: random tree plus random extra edges."""
    n = draw(st.integers(min_value=min_vertices, max_value=max_vertices))
    parents = [draw(st.integers(min_value=0, max_value=max(0, i - 1))) for i in range(1, n)]
    edges = [(i + 1, p) for i, p in enumerate(parents)]
    num_extra = draw(st.integers(min_value=0, max_value=2 * n))
    for _ in range(num_extra):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 1))
        if u != v:
            edges.append((u, v))
    return Graph(n, edges)


class TestEmulatorProperties:
    @given(graph=random_graphs(), kappa=st.sampled_from([2, 3, 4, 8]))
    @settings(**SETTINGS)
    def test_size_bound_always_holds(self, graph, kappa):
        result = build_emulator(graph, eps=0.1, kappa=kappa)
        assert result.num_edges <= size_bound(graph.num_vertices, kappa) + 1e-9

    @given(graph=connected_graphs(), kappa=st.sampled_from([2, 4]))
    @settings(**SETTINGS)
    def test_stretch_guarantee_always_holds(self, graph, kappa):
        result = build_emulator(graph, eps=0.1, kappa=kappa)
        report = verify_emulator(graph, result.emulator, result.alpha, result.beta)
        assert report.valid

    @given(graph=connected_graphs(max_vertices=24))
    @settings(**SETTINGS)
    def test_distances_never_shortened(self, graph):
        result = build_emulator(graph, eps=0.1, kappa=4)
        for source in range(graph.num_vertices):
            dg = bfs_distances(graph, source)
            dh = result.emulator.dijkstra(source)
            for target, d in dg.items():
                assert dh.get(target, float("inf")) >= d - 1e-9

    @given(graph=random_graphs(), kappa=st.sampled_from([2, 4, 8]))
    @settings(**SETTINGS)
    def test_charging_invariants(self, graph, kappa):
        result = build_emulator(graph, eps=0.1, kappa=kappa)
        degree_by_phase = {
            i: result.schedule.degree(i) for i in range(result.schedule.num_phases)
        }
        result.ledger.verify_interconnection_budget(degree_by_phase)
        result.ledger.verify_superclustering_budget()
        result.ledger.verify_single_charging_phase()

    @given(graph=random_graphs())
    @settings(**SETTINGS)
    def test_edge_weights_upper_bound_distances(self, graph):
        result = build_emulator(graph, eps=0.1, kappa=4)
        for u, v, w in result.emulator.edges():
            assert w >= bfs_distances(graph, u).get(v, float("inf")) - 1e-9


class TestSpannerProperties:
    @given(graph=connected_graphs(max_vertices=26))
    @settings(**SETTINGS)
    def test_spanner_is_always_subgraph(self, graph):
        result = build_near_additive_spanner(graph, eps=0.01, kappa=4, rho=0.45)
        assert result.is_subgraph_of(graph)

    @given(graph=connected_graphs(max_vertices=22))
    @settings(**SETTINGS)
    def test_spanner_preserves_connectivity(self, graph):
        result = build_near_additive_spanner(graph, eps=0.01, kappa=4, rho=0.45)
        assert len(result.spanner.connected_components()) == len(graph.connected_components())


class TestScheduleProperties:
    @given(
        n=st.integers(min_value=2, max_value=10_000),
        kappa=st.floats(min_value=2.0, max_value=128.0),
        eps=st.floats(min_value=0.01, max_value=0.1),
    )
    @settings(max_examples=100, deadline=None)
    def test_centralized_schedule_consistency(self, n, kappa, eps):
        sched = CentralizedSchedule(n=n, eps=eps, kappa=kappa)
        assert sched.num_phases == sched.ell + 1
        assert sched.delta(0) == 1.0
        # Degrees square phase over phase; telescoping needs this exactly.
        for i in range(sched.ell):
            assert math.isclose(sched.degree(i + 1), sched.degree(i) ** 2, rel_tol=1e-9)
        # Radii and deltas increase.
        for i in range(sched.ell):
            assert sched.delta(i + 1) > sched.delta(i)
            assert sched.radius_bound(i + 1) >= sched.radius_bound(i)

    @given(n=st.integers(min_value=2, max_value=10_000), kappa=st.floats(min_value=2, max_value=64))
    @settings(max_examples=100, deadline=None)
    def test_size_bound_monotone_in_kappa(self, n, kappa):
        assert size_bound(n, kappa) >= size_bound(n, kappa + 1) - 1e-6
        assert size_bound(n, kappa) >= n or n <= 1


class TestCongestProperties:
    @given(graph=connected_graphs(max_vertices=24), separation=st.integers(2, 5))
    @settings(**SETTINGS)
    def test_greedy_ruling_set_properties(self, graph, separation):
        candidates = list(graph.vertices())
        result = greedy_ruling_set(graph, candidates, separation)
        assert verify_ruling_set(graph, candidates, result.members, separation,
                                 result.domination)

    @given(
        graph=connected_graphs(max_vertices=20),
        degree=st.integers(min_value=1, max_value=6),
        delta=st.integers(min_value=1, max_value=4),
    )
    @settings(**SETTINGS)
    def test_popular_detection_matches_ground_truth(self, graph, degree, delta):
        centers = list(graph.vertices())
        result = detect_popular_clusters(graph, centers, degree, delta)
        expected = set()
        for c in centers:
            dist = bfs_distances(graph, c)
            count = sum(1 for o in centers if o != c and dist.get(o, math.inf) <= delta)
            if count >= degree:
                expected.add(c)
        assert result.popular == expected
