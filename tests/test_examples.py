"""Smoke tests: every example script must run end-to-end without errors."""

from __future__ import annotations

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLE_SCRIPTS = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_has_expected_scripts():
    assert "quickstart.py" in EXAMPLE_SCRIPTS
    assert len(EXAMPLE_SCRIPTS) >= 3


@pytest.mark.parametrize("script", EXAMPLE_SCRIPTS)
def test_example_runs(script, capsys, monkeypatch):
    """Each example's main() completes and prints something sensible."""
    path = EXAMPLES_DIR / script
    monkeypatch.setattr(sys, "argv", [str(path)])
    runpy.run_path(str(path), run_name="__main__")
    out = capsys.readouterr().out
    assert len(out.splitlines()) >= 3
