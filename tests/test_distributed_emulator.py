"""Tests for the distributed CONGEST emulator construction (Section 3)."""

from __future__ import annotations

import pytest

from repro.analysis.validation import verify_emulator, verify_no_shortening
from repro.core.parameters import DistributedSchedule, size_bound
from repro.distributed.emulator_congest import (
    DistributedEmulatorBuilder,
    build_emulator_congest,
)
from repro.graphs import generators
from repro.graphs.graph import Graph


@pytest.fixture(scope="module")
def congest_result():
    """One shared construction on a 60-vertex random graph (module-scoped for speed)."""
    graph = generators.connected_erdos_renyi(60, 0.08, seed=11)
    return graph, build_emulator_congest(graph, eps=0.01, kappa=4, rho=0.45)


class TestSizeAndStretch:
    def test_within_size_bound(self, congest_result):
        graph, result = congest_result
        assert result.num_edges <= size_bound(graph.num_vertices, 4) + 1e-9

    def test_stretch_guarantee(self, congest_result):
        graph, result = congest_result
        report = verify_emulator(graph, result.emulator,
                                 result.schedule.alpha, result.schedule.beta)
        assert report.valid

    def test_no_shortening(self, congest_result):
        graph, result = congest_result
        assert verify_no_shortening(graph, result.emulator, sample_pairs=None)

    def test_small_grid(self):
        graph = generators.grid_graph(6, 6)
        result = build_emulator_congest(graph, eps=0.01, kappa=4, rho=0.45)
        assert result.num_edges <= size_bound(36, 4) + 1e-9
        report = verify_emulator(graph, result.emulator,
                                 result.schedule.alpha, result.schedule.beta)
        assert report.valid

    def test_star_graph(self):
        graph = generators.star_graph(30)
        result = build_emulator_congest(graph, eps=0.01, kappa=4, rho=0.45)
        assert result.num_edges <= size_bound(30, 4) + 1e-9
        report = verify_emulator(graph, result.emulator,
                                 result.schedule.alpha, result.schedule.beta)
        assert report.valid

    def test_ring_of_cliques(self):
        graph = generators.ring_of_cliques(5, 6)
        result = build_emulator_congest(graph, eps=0.01, kappa=3, rho=0.4)
        assert result.num_edges <= size_bound(30, 3) + 1e-9

    def test_empty_graph(self):
        result = build_emulator_congest(Graph(5), eps=0.01, kappa=4, rho=0.45)
        assert result.num_edges == 0

    def test_disconnected(self, disconnected_graph):
        result = build_emulator_congest(disconnected_graph, eps=0.01, kappa=4, rho=0.45)
        assert result.num_edges <= size_bound(10, 4) + 1e-9


class TestDistributedGuarantees:
    def test_both_endpoints_know_every_edge(self, congest_result):
        _, result = congest_result
        assert result.both_endpoints_know_all_edges()

    def test_rounds_positive_and_bounded(self, congest_result):
        _, result = congest_result
        assert result.rounds > 0
        # The ratio to the theoretical bound should be a modest constant.
        assert result.rounds <= 100 * result.round_bound

    def test_messages_positive(self, congest_result):
        _, result = congest_result
        assert result.messages > 0

    def test_charging_invariants(self, congest_result):
        _, result = congest_result
        degree_by_phase = {i: result.schedule.degree(i)
                           for i in range(result.schedule.num_phases)}
        result.ledger.verify_interconnection_budget(degree_by_phase)
        result.ledger.verify_superclustering_budget()
        result.ledger.verify_single_charging_phase()

    def test_phase_stats_cover_all_phases(self, congest_result):
        _, result = congest_result
        assert len(result.phase_stats) == result.schedule.num_phases

    def test_last_phase_no_superclustering(self, congest_result):
        _, result = congest_result
        assert result.phase_stats[-1].superclusters_formed == 0

    def test_knowledge_map_covers_all_vertices(self, congest_result):
        graph, result = congest_result
        assert set(result.knowledge) == set(graph.vertices())


class TestRulingSetModes:
    def test_bitwise_mode_also_valid(self):
        graph = generators.connected_erdos_renyi(40, 0.1, seed=5)
        result = build_emulator_congest(graph, eps=0.01, kappa=4, rho=0.45,
                                        ruling_set_mode="bitwise")
        assert result.num_edges <= size_bound(40, 4) + 1e-9
        assert verify_no_shortening(graph, result.emulator, sample_pairs=None)
        assert result.both_endpoints_know_all_edges()

    def test_unknown_mode_rejected(self, path10):
        with pytest.raises(ValueError):
            DistributedEmulatorBuilder(path10, ruling_set_mode="magic")

    def test_schedule_mismatch_rejected(self, path10):
        schedule = DistributedSchedule(n=99, eps=0.01, kappa=4, rho=0.45)
        with pytest.raises(ValueError):
            DistributedEmulatorBuilder(path10, schedule=schedule)


class TestAgreementWithCentralized:
    def test_same_size_bound_and_validity_across_rhos(self):
        graph = generators.connected_erdos_renyi(50, 0.08, seed=9)
        for rho in (0.3, 0.45):
            result = build_emulator_congest(graph, eps=0.01, kappa=4, rho=rho)
            assert result.num_edges <= size_bound(50, 4) + 1e-9
            report = verify_emulator(graph, result.emulator,
                                     result.schedule.alpha, result.schedule.beta)
            assert report.valid

    def test_deterministic(self):
        graph = generators.connected_erdos_renyi(40, 0.1, seed=13)
        r1 = build_emulator_congest(graph, eps=0.01, kappa=4, rho=0.45)
        r2 = build_emulator_congest(graph, eps=0.01, kappa=4, rho=0.45)
        assert sorted(r1.emulator.edges()) == sorted(r2.emulator.edges())
        assert r1.rounds == r2.rounds
