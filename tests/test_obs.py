"""Tests for ``repro.obs``: metrics, spans, exporters, and the threading.

Covers the observability acceptance surface: trace-export determinism
(same seeded build -> same span names/attrs/tree shape), Prometheus
text-exposition conformance, disabled-mode no-ops, worker-span merge
parity (a parallel sweep's span multiset equals a serial sweep's), the
daemon's ``GET /metrics``, and the shared latency-percentile math.
"""

from __future__ import annotations

import json
import re
import urllib.request

import pytest

from repro import obs
from repro.api import BuildSpec, GridSweep, build, run_sweep
from repro.experiments.workloads import workload_by_name
from repro.obs import (
    LATENCY_BUCKETS_MS,
    Histogram,
    latency_summary,
    nearest_rank_percentile,
)
from repro.serve.daemon import OracleDaemon
from repro.serve.spec import ServeSpec


@pytest.fixture(autouse=True)
def clean_obs():
    """Each test starts from an empty, enabled registry and restores after."""
    previous = obs.set_enabled(True)
    obs.reset()
    yield
    obs.reset()
    obs.set_enabled(previous)


def _graph(n=64, seed=0):
    return workload_by_name("erdos-renyi", n, seed=seed).graph


def _span_shape(records):
    """The determinism-relevant view of a span buffer: names, attrs, tree.

    Parent links are translated to parent *names* (ids are allocation
    order, which replays identically anyway, but names make failures
    readable); timestamps and durations are deliberately excluded.
    """
    by_id = {record.span_id: record for record in records}
    shape = []
    for record in records:
        parent = by_id.get(record.parent_id)
        shape.append((record.name, dict(record.attrs),
                      parent.name if parent else None))
    return shape


# ----------------------------------------------------------------------
# Percentiles (the deduplicated serving-layer math)
# ----------------------------------------------------------------------
def test_nearest_rank_percentile_matches_convention():
    values = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0]
    assert nearest_rank_percentile(values, 0.50) == 5.0
    assert nearest_rank_percentile(values, 0.95) == 10.0
    assert nearest_rank_percentile(values, 1.0) == 10.0
    assert nearest_rank_percentile([], 0.5) == 0.0
    with pytest.raises(ValueError):
        nearest_rank_percentile(values, 0.0)


def test_latency_summary_sorts_and_reduces():
    summary = latency_summary([3.0, 1.0, 2.0])
    assert summary.count == 3
    assert summary.mean == pytest.approx(2.0)
    assert summary.p50 == 2.0
    assert summary.p99 == 3.0
    empty = latency_summary([])
    assert (empty.count, empty.mean, empty.p50, empty.p95, empty.p99) == (0, 0.0, 0.0, 0.0, 0.0)


def test_harness_reexports_percentile():
    from repro.serve.harness import nearest_rank_percentile as reexported

    assert reexported is nearest_rank_percentile


# ----------------------------------------------------------------------
# Histogram (the daemon's /stats snapshot format, preserved)
# ----------------------------------------------------------------------
def test_histogram_snapshot_format():
    histogram = Histogram(LATENCY_BUCKETS_MS)
    histogram.observe(0.2)
    histogram.observe(3.0)
    snapshot = histogram.snapshot()
    assert snapshot["count"] == 2
    assert snapshot["total_ms"] == pytest.approx(3.2)
    assert snapshot["mean_ms"] == pytest.approx(1.6)
    assert len(snapshot["buckets"]) == len(LATENCY_BUCKETS_MS)
    assert snapshot["buckets"][-1]["le_ms"] == "inf"
    counted = {entry["le_ms"]: entry["count"] for entry in snapshot["buckets"]}
    assert counted[0.25] == 1  # 0.2 lands in (0.1, 0.25]
    assert counted[5.0] == 1  # 3.0 lands in (2.5, 5.0]
    assert json.loads(json.dumps(snapshot)) == snapshot  # JSON-round-trippable


# ----------------------------------------------------------------------
# Trace determinism
# ----------------------------------------------------------------------
def test_build_trace_is_deterministic():
    spec = BuildSpec(product="emulator", method="centralized", eps=0.1, kappa=4.0)
    shapes = []
    for _ in range(2):
        obs.reset()
        build(_graph(), spec)
        shapes.append(_span_shape(obs.snapshot_spans()))
    assert shapes[0] == shapes[1]
    names = [name for name, _, _ in shapes[0]]
    assert "build" in names
    # One span per superclustering phase, parented under the build span.
    phase_rows = [row for row in shapes[0] if row[0] == "emulator.phase"]
    assert phase_rows
    assert all(parent == "build" for _, _, parent in phase_rows)
    assert [attrs["phase"] for _, attrs, _ in phase_rows] == list(range(len(phase_rows)))
    # Phase spans carry the per-phase counters, never timing values.
    for _, attrs, _ in phase_rows:
        assert "clusters" in attrs and "backend" in attrs
        assert not any("seconds" in key or "elapsed" in key for key in attrs)


def test_export_trace_loads_and_summarizes(tmp_path):
    build(_graph(), BuildSpec(product="spanner", method="centralized"))
    path = tmp_path / "trace.json"
    count = obs.export_trace(str(path))
    assert count == len(obs.snapshot_spans()) > 0
    events = obs.load_trace(str(path))
    assert len(events) == count
    assert all(event["ph"] == "X" and event["cat"] == "repro" for event in events)
    # Loadable-in-Perfetto shape: the file is an object with traceEvents.
    payload = json.loads(path.read_text())
    assert isinstance(payload["traceEvents"], list)
    rows = obs.summarize_trace(events)
    assert any(row["span"].startswith("spanner.phase[phase=") for row in rows)
    table = obs.format_trace_summary(rows)
    assert "span" in table and "total_ms" in table


# ----------------------------------------------------------------------
# Prometheus exposition conformance
# ----------------------------------------------------------------------
#: One sample line: name, optional {labels}, space, value.
_SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"
    r"(\{[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\\n]|\\.)*\""
    r"(,[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\\n]|\\.)*\")*\})?"
    r" (\+Inf|-Inf|NaN|-?[0-9.eE+-]+)$"
)


def test_prometheus_text_conformance():
    obs.inc("repro_test_things_total", help="things")
    obs.inc("repro_test_things_total", 2, kind='we"ird\\label')
    obs.set_gauge("repro_test_level", 0.5)
    obs.observe("repro_test_latency_ms", 1.0)
    text = obs.prometheus_text()
    assert text.endswith("\n")
    for line in text.splitlines():
        if not line or line.startswith("#"):
            assert not line or re.match(r"^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]*", line)
            continue
        assert _SAMPLE_RE.match(line), f"unparseable sample line: {line!r}"
    assert 'kind="we\\"ird\\\\label"' in text
    # Histogram exposition: cumulative buckets ending at +Inf, plus sum/count.
    assert 'repro_test_latency_ms_bucket{le="+Inf"} 1' in text
    assert "repro_test_latency_ms_sum 1" in text
    assert "repro_test_latency_ms_count 1" in text


def test_counters_and_gauges_readback():
    obs.inc("repro_test_total", product="emulator")
    obs.inc("repro_test_total", 2, product="emulator")
    obs.set_gauge("repro_test_gauge", 7.0)
    assert obs.get_metric("repro_test_total", product="emulator") == 3
    assert obs.get_metric("repro_test_gauge") == 7.0
    snapshot = obs.metrics_snapshot()
    assert "repro_test_total" in snapshot


# ----------------------------------------------------------------------
# Disabled mode
# ----------------------------------------------------------------------
def test_disabled_mode_records_nothing():
    obs.set_enabled(False)
    obs.inc("repro_test_total")
    obs.set_gauge("repro_test_gauge", 1.0)
    obs.observe("repro_test_hist", 1.0)
    with obs.span("outer", a=1) as record:
        record.set(b=2)
        assert obs.current_span() is None
    build(_graph(48), BuildSpec(product="emulator", method="centralized"))
    assert obs.snapshot_spans() == []
    assert obs.metrics_snapshot() == {}
    assert obs.prometheus_text() == ""
    assert obs.get_metric("repro_test_total") is None


def test_disabled_histogram_instance_still_works():
    # The daemon's /stats histogram must keep working with telemetry off.
    obs.set_enabled(False)
    histogram = Histogram(LATENCY_BUCKETS_MS)
    obs.register_histogram("repro_test_latency_ms", histogram)
    histogram.observe(1.0)
    assert histogram.snapshot()["count"] == 1
    assert obs.prometheus_text() == ""


def test_env_flag_parsing(monkeypatch):
    from repro.obs.telemetry import _env_enabled

    for value in ("0", "false", "no", "off", "FALSE"):
        monkeypatch.setenv("REPRO_OBS", value)
        assert _env_enabled() is False
    for value in ("1", "true", ""):
        monkeypatch.setenv("REPRO_OBS", value)
        assert _env_enabled() is True
    monkeypatch.delenv("REPRO_OBS")
    assert _env_enabled() is True


# ----------------------------------------------------------------------
# Worker-span merge parity
# ----------------------------------------------------------------------
def _sweep_span_multiset(workers):
    obs.reset()
    graph = _graph(40)
    sweep = GridSweep(products=("emulator",), methods=("centralized", "fast"),
                      eps_values=(0.1,), kappas=(4.0,), rhos=(0.45,))
    # No shared exploration cache and no result cache: cache counters are
    # order-dependent across processes and hits skip whole builds, so
    # parity is only well-defined without them.
    records = run_sweep({"g": graph}, sweep, workers=workers,
                        share_explorations=False, cache=None)
    assert len(records) == 2
    spans = sorted(
        (record.name, tuple(sorted(record.attrs.items())))
        for record in obs.snapshot_spans()
    )
    return spans


def test_worker_span_merge_parity():
    serial = _sweep_span_multiset(workers=1)
    parallel = _sweep_span_multiset(workers=2)
    assert serial == parallel
    assert any(name == "emulator.phase" for name, _ in serial)
    assert any(name == "sweep.build" for name, _ in serial)


def test_merge_spans_reparents_under_current_span():
    with obs.capture_spans() as captured:
        with obs.span("shipped.root"):
            with obs.span("shipped.child"):
                pass
    frozen = obs.freeze_spans(captured.spans)
    obs.clear_spans()
    with obs.span("parent"):
        assert obs.merge_spans(frozen) == 2
    records = obs.snapshot_spans()
    by_name = {record.name: record for record in records}
    assert by_name["shipped.root"].parent_id == by_name["parent"].span_id
    assert by_name["shipped.child"].parent_id == by_name["shipped.root"].span_id


# ----------------------------------------------------------------------
# Daemon /metrics
# ----------------------------------------------------------------------
def test_daemon_metrics_endpoint_agrees_with_stats():
    graph = _graph(48)
    with OracleDaemon(port=0) as daemon:
        daemon.add_oracle("default", graph, ServeSpec())
        daemon.start()
        url = daemon.url
        for u, v in [(0, 5), (1, 7), (2, 9)]:
            body = json.dumps({"u": u, "v": v}).encode()
            request = urllib.request.Request(
                url + "/query", data=body,
                headers={"Content-Type": "application/json"},
            )
            urllib.request.urlopen(request).read()
        stats = json.loads(urllib.request.urlopen(url + "/stats").read())
        response = urllib.request.urlopen(url + "/metrics")
        assert response.headers["Content-Type"].startswith("text/plain")
        text = response.read().decode()
    for line in text.splitlines():
        if line and not line.startswith("#"):
            assert _SAMPLE_RE.match(line), f"unparseable sample line: {line!r}"
    assert 'repro_daemon_requests_total{endpoint="/query",oracle="default"} 3' in text
    assert stats["daemon"]["requests"] == 3  # snapshot predates its own request
    # The scrape-time collector mirrors engine counters into gauges.
    assert ('repro_engine_queries{oracle="default"} '
            f'{stats["oracles"]["default"]["queries"]}') in text
    # The /stats latency histogram is the same instance /metrics exposes.
    assert "repro_daemon_request_latency_ms_bucket" in text
    assert stats["daemon"]["latency_ms"]["count"] >= 3


def test_daemon_metrics_disabled_mode_keeps_stats():
    obs.set_enabled(False)
    graph = _graph(48)
    with OracleDaemon(port=0) as daemon:
        daemon.add_oracle("default", graph, ServeSpec())
        daemon.start()
        url = daemon.url
        body = json.dumps({"u": 0, "v": 5}).encode()
        request = urllib.request.Request(
            url + "/query", data=body, headers={"Content-Type": "application/json"}
        )
        urllib.request.urlopen(request).read()
        stats = json.loads(urllib.request.urlopen(url + "/stats").read())
        text = urllib.request.urlopen(url + "/metrics").read().decode()
    assert stats["daemon"]["requests"] == 1  # snapshot predates its own request
    assert stats["daemon"]["latency_ms"]["count"] >= 1  # histogram still live
    assert "repro_daemon_requests_total" not in text  # no obs counters


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_build_trace_and_report(tmp_path, capsys):
    from repro.cli import main

    trace = tmp_path / "build-trace.json"
    assert main(["build", "--family", "erdos-renyi", "--n", "48",
                 "--product", "emulator", "--trace", str(trace)]) == 0
    events = obs.load_trace(str(trace))
    assert any(event["name"] == "emulator.phase" for event in events)
    capsys.readouterr()
    assert main(["obs-report", str(trace)]) == 0
    out = capsys.readouterr().out
    assert "emulator.phase[phase=0]" in out


def test_cli_obs_report_rejects_garbage(tmp_path, capsys):
    from repro.cli import main

    bad = tmp_path / "bad.json"
    bad.write_text('{"not": "a trace"}')
    assert main(["obs-report", str(bad)]) == 2
    assert "error" in capsys.readouterr().err
