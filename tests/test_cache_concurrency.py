"""Concurrency tests for :class:`repro.api.cache.ResultCache`.

The cache is the result transport of the distributed executor: several
worker *processes* (plus the coordinator) hammer one directory, often
writing the same content-addressed key at once (at-least-once execution
makes same-key races routine, not exceptional).  The guarantees under
test:

* a reader racing any number of writers never observes a torn entry —
  every ``get`` is a full, checksum-valid result or a miss;
* same-key writers through ``mkstemp`` + ``os.replace`` leave exactly
  one entry per key and no orphaned ``*.tmp`` files;
* the bounded cache's incremental ``(count, bytes)`` accounting agrees
  with the directory after a rescan, even when other processes wrote
  entries behind this process's back.
"""

from __future__ import annotations

import os
import subprocess
import sys
import threading

from repro.api.cache import ResultCache
from repro.api.facade import build
from repro.api.result import BuildResultAdapter
from repro.api.spec import BuildSpec
from repro.graphs import generators

GRAPH = generators.grid_graph(3, 3)
SPECS = [BuildSpec(product="emulator", method="centralized", seed=seed)
         for seed in range(3)]

#: One writer process: put every spec's result ROUNDS times.
WRITER_SCRIPT = """
import sys
from repro.api.cache import ResultCache
from repro.api.facade import build
from repro.api.spec import BuildSpec
from repro.graphs import generators

directory, rounds = sys.argv[1], int(sys.argv[2])
graph = generators.grid_graph(3, 3)
cache = ResultCache(directory)
jobs = []
for seed in range(3):
    spec = BuildSpec(product="emulator", method="centralized", seed=seed)
    jobs.append((cache.key(graph.content_hash(), spec), build(graph, spec)))
for _ in range(rounds):
    for key, result in jobs:
        assert cache.put(key, result)
"""


def _spawn_writer(directory: str, rounds: int) -> subprocess.Popen:
    env = os.environ.copy()
    src = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    return subprocess.Popen(
        [sys.executable, "-c", WRITER_SCRIPT, directory, str(rounds)],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
    )


class TestMultiProcessWriters:
    def test_same_key_races_never_tear_entries(self, tmp_path):
        directory = str(tmp_path / "cache")
        cache = ResultCache(directory)
        keys = [cache.key(GRAPH.content_hash(), spec) for spec in SPECS]
        expected = {key: frozenset(build(GRAPH, spec).edges)
                    for key, spec in zip(keys, SPECS)}

        writers = [_spawn_writer(directory, rounds=20) for _ in range(3)]
        torn = []
        stop = threading.Event()

        def reader() -> None:
            # Race the writers: every observed value must be complete.
            while not stop.is_set():
                for key in keys:
                    result = cache.get(key)
                    if result is None:
                        continue
                    if not isinstance(result, BuildResultAdapter) or \
                            frozenset(result.edges) != expected[key]:
                        torn.append(key)
                        return

        thread = threading.Thread(target=reader, daemon=True)
        thread.start()
        try:
            for writer in writers:
                stdout, stderr = writer.communicate(timeout=120)
                assert writer.returncode == 0, stderr.decode()
        finally:
            stop.set()
            thread.join(timeout=10)

        assert not torn, f"reader observed torn entries for {torn}"
        assert cache.evictions == 0  # nothing ever failed integrity
        # Exactly one entry per key, every one readable, no tmp orphans.
        assert len(cache) == len(keys)
        for key in keys:
            result = cache.get(key)
            assert result is not None
            assert frozenset(result.edges) == expected[key]
        assert not list((tmp_path / "cache").rglob("*.tmp"))

    def test_bounded_accounting_stays_consistent_across_processes(self, tmp_path):
        directory = str(tmp_path / "cache")
        # Other processes fill the directory behind this handle's back...
        writers = [_spawn_writer(directory, rounds=5) for _ in range(2)]
        for writer in writers:
            stdout, stderr = writer.communicate(timeout=120)
            assert writer.returncode == 0, stderr.decode()

        # ...then a bounded handle opens cold and must reconcile reality.
        bounded = ResultCache(directory, max_entries=2)
        spec = BuildSpec(product="spanner", method="centralized")
        key = bounded.key(GRAPH.content_hash(), spec)
        assert bounded.put(key, build(GRAPH, spec))
        assert len(bounded) <= 2
        assert bounded.evictions >= 2  # 3 foreign entries + ours, bound 2
        # The rescan synchronized the approximation with the directory.
        actual_count = len(bounded)
        actual_bytes = sum(
            path.stat().st_size
            for path in (tmp_path / "cache").glob("??/*.pkl")
        )
        assert bounded._approx_count == actual_count
        assert bounded._approx_bytes == actual_bytes
        # Our fresh entry survived (puts never evict what they just wrote).
        assert bounded.get(key) is not None
