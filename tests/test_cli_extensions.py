"""Tests for the CLI sub-commands added alongside the application layer."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestHopsetCommand:
    def test_hopset_build_prints_summary(self, capsys):
        exit_code = main(["hopset", "--family", "grid", "--n", "36", "--eps", "0.1"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "hopset" in out
        assert "hopbound" in out

    def test_hopset_fast_method_clamps_eps(self, capsys):
        # Default --eps 0.1 must be clamped for fast/congest methods, same
        # as the build subcommand, so the reported guarantee is meaningful.
        exit_code = main(["hopset", "--family", "grid", "--n", "25", "--method", "fast",
                          "--sample-pairs", "20"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "alpha 101" not in out  # the unclamped eps=0.1 signature

    def test_hopset_with_explicit_kappa(self, capsys):
        exit_code = main(["hopset", "--family", "erdos-renyi", "--n", "48",
                          "--kappa", "4", "--sample-pairs", "50"])
        assert exit_code == 0
        assert "hopset" in capsys.readouterr().out


class TestOracleCommand:
    def test_oracle_answers_queries(self, capsys):
        exit_code = main(["oracle", "--family", "grid", "--n", "36",
                          "--queries", "0:35", "0:6", "3:3"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert out.count("d(") == 3

    def test_oracle_rejects_malformed_query(self):
        with pytest.raises(SystemExit):
            main(["oracle", "--family", "grid", "--n", "36", "--queries", "zero:one"])


class TestParser:
    def test_new_subcommands_registered(self):
        parser = build_parser()
        text = parser.format_help()
        assert "hopset" in text
        assert "oracle" in text
