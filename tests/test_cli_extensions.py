"""Tests for the CLI sub-commands added alongside the application layer."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestHopsetCommand:
    def test_hopset_build_prints_summary(self, capsys):
        exit_code = main(["hopset", "--family", "grid", "--n", "36", "--eps", "0.1"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "hopset" in out
        assert "hopbound" in out

    def test_hopset_fast_method_clamps_eps(self, capsys):
        # Default --eps 0.1 must be clamped for fast/congest methods, same
        # as the build subcommand, so the reported guarantee is meaningful.
        exit_code = main(["hopset", "--family", "grid", "--n", "25", "--method", "fast",
                          "--sample-pairs", "20"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "alpha 101" not in out  # the unclamped eps=0.1 signature

    def test_hopset_with_explicit_kappa(self, capsys):
        exit_code = main(["hopset", "--family", "erdos-renyi", "--n", "48",
                          "--kappa", "4", "--sample-pairs", "50"])
        assert exit_code == 0
        assert "hopset" in capsys.readouterr().out


class TestOracleCommand:
    def test_oracle_answers_queries(self, capsys):
        exit_code = main(["oracle", "--family", "grid", "--n", "36",
                          "--queries", "0:35", "0:6", "3:3"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert out.count("d(") == 3

    def test_oracle_rejects_malformed_query(self):
        with pytest.raises(SystemExit):
            main(["oracle", "--family", "grid", "--n", "36", "--queries", "zero:one"])


class TestQueryCommand:
    def test_query_answers_from_any_backend(self, capsys):
        exit_code = main(["query", "--family", "grid", "--n", "36",
                          "--backend", "exact", "--queries", "0:35", "0:6"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert out.count("d(") == 2
        assert "serving exact" in out
        assert "engine:" in out

    def test_eps_clamp_keys_on_the_backend_build(self, capsys):
        exit_code = main(["query", "--family", "grid", "--n", "25",
                          "--product", "emulator", "--backend", "spanner",
                          "--eps", "0.5", "--queries", "0:24"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "eps=0.01" in out  # the spanner build is what actually runs

    def test_query_defaults_backend_to_product(self, capsys):
        exit_code = main(["query", "--family", "grid", "--n", "25",
                          "--product", "spanner", "--queries", "0:24"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "serving spanner via spanner/centralized" in out

    def test_query_rejects_malformed_query(self):
        with pytest.raises(SystemExit):
            main(["query", "--family", "grid", "--n", "36", "--queries", "zero:one"])

    def test_query_rejects_out_of_range_vertex(self, capsys):
        exit_code = main(["query", "--family", "grid", "--n", "16",
                          "--queries", "0:9999"])
        assert exit_code == 2
        assert "out of range" in capsys.readouterr().err


class TestBenchServeCommand:
    def test_bench_serve_prints_json_report(self, capsys):
        exit_code = main(["bench-serve", "--family", "erdos-renyi", "--n", "48",
                          "--workload", "zipf", "--queries", "300",
                          "--stretch-sample", "40"])
        out = capsys.readouterr().out
        assert exit_code == 0
        import json

        report = json.loads(out)
        assert report["workload"] == "zipf"
        assert report["num_queries"] == 300
        assert report["throughput_qps"] > 0
        assert report["stretch_ok"] is True
        assert report["latency_p50_ms"] <= report["latency_p99_ms"]

    def test_bench_serve_writes_output_file(self, tmp_path, capsys):
        target = tmp_path / "report.json"
        exit_code = main(["bench-serve", "--family", "grid", "--n", "25",
                          "--backend", "exact", "--queries", "100",
                          "--output", str(target)])
        capsys.readouterr()
        assert exit_code == 0
        import json

        report = json.loads(target.read_text())
        assert report["backend"] == "exact"


class TestSweepCacheLimit:
    def test_sweep_accepts_cache_max_entries(self, tmp_path, capsys):
        exit_code = main(["sweep", "--family", "grid", "--n", "16",
                          "--products", "emulator", "--methods", "centralized",
                          "--eps-values", "0.1", "0.2", "0.3",
                          "--cache-dir", str(tmp_path / "cache"),
                          "--cache-max-entries", "2"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "cache:" in out
        # The store never holds more than the bound.
        stored = list((tmp_path / "cache").glob("??/*.pkl"))
        assert len(stored) <= 2

    def test_cache_max_entries_without_a_cache_is_an_error(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        exit_code = main(["sweep", "--family", "grid", "--n", "16",
                          "--products", "emulator", "--methods", "centralized",
                          "--cache-max-entries", "2"])
        err = capsys.readouterr().err
        assert exit_code == 2
        assert "--cache-max-entries requires a cache" in err


class TestParser:
    def test_new_subcommands_registered(self):
        parser = build_parser()
        text = parser.format_help()
        assert "hopset" in text
        assert "oracle" in text
        assert "query" in text
        assert "bench-serve" in text


class TestDaemonCommands:
    """The --url halves of query / bench-serve, against an in-process daemon."""

    @pytest.fixture(scope="class")
    def daemon(self):
        from repro.experiments.workloads import workload_by_name
        from repro.serve import OracleDaemon, ServeSpec

        graph = workload_by_name("erdos-renyi", 48, seed=0).graph
        with OracleDaemon(port=0) as d:
            d.add_oracle("default", graph, ServeSpec(backend="exact"))
            d.start()
            yield d

    def test_query_url_answers_without_a_local_build(self, daemon, capsys):
        exit_code = main(["query", "--url", daemon.url, "--queries", "0:17", "3:3"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert out.count("d(") == 2
        assert "d(3, 3) <= 0.0" in out
        assert "remote:" in out

    def test_query_url_unknown_oracle_is_a_clean_error(self, daemon, capsys):
        exit_code = main(["query", "--url", daemon.url, "--oracle-name", "nope",
                          "--queries", "0:1"])
        assert exit_code == 2
        assert "served oracles" in capsys.readouterr().err

    def test_query_dead_url_is_a_clean_error(self, capsys):
        from repro.serve import OracleDaemon

        probe = OracleDaemon(port=0)
        dead_url = probe.url
        probe.close()
        exit_code = main(["query", "--url", dead_url, "--queries", "0:1"])
        assert exit_code == 2
        assert "unreachable" in capsys.readouterr().err

    def test_bench_serve_url_sweeps_concurrency(self, daemon, capsys):
        import json as json_module

        exit_code = main([
            "bench-serve", "--url", daemon.url, "--family", "erdos-renyi",
            "--n", "48", "--workload", "zipf", "--queries", "60",
            "--concurrency", "1", "2", "--stretch-sample", "20",
        ])
        captured = capsys.readouterr()
        assert exit_code == 0
        report = json_module.loads(captured.out)
        assert [level["concurrency"] for level in report["levels"]] == [1, 2]
        assert report["stretch_ok"] is True
        assert "wire sweep" in captured.err

    def test_serve_daemon_flags_registered(self):
        parser = build_parser()
        args = parser.parse_args([
            "serve-daemon", "--family", "grid", "--n", "36", "--port", "0",
            "--name", "grid", "--warmup-sources", "4", "--verbose",
        ])
        assert args.command == "serve-daemon"
        assert args.port == 0
        assert args.name == "grid"
        assert args.warmup_sources == 4
        assert args.verbose is True
