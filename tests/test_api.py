"""Tests for the unified build API: spec, registry, facade, result, shims."""

from __future__ import annotations

import pytest

from repro.api import (
    METHODS,
    PRODUCTS,
    BuildEvent,
    BuildResult,
    BuildResultAdapter,
    BuildSpec,
    GridSweep,
    available_builders,
    build,
    clear_build_hooks,
    format_sweep_table,
    get_builder,
    is_supported,
    on_build,
    register_builder,
    remove_build_hook,
    run_sweep,
)
from repro.graphs import generators

#: Every (product, method) pair the stock registrations support.
EXPECTED_COMBOS = [
    ("emulator", "centralized"),
    ("emulator", "congest"),
    ("emulator", "fast"),
    ("hopset", "centralized"),
    ("hopset", "congest"),
    ("hopset", "fast"),
    ("spanner", "centralized"),
    ("spanner", "congest"),
    ("spanner", "fast"),
]


@pytest.fixture
def grid25():
    return generators.grid_graph(5, 5)


class TestBuildSpec:
    def test_defaults(self):
        spec = BuildSpec()
        assert spec.product == "emulator"
        assert spec.method == "centralized"
        assert spec.key == ("emulator", "centralized")

    @pytest.mark.parametrize("kwargs", [
        {"product": "oracle"},
        {"method": "quantum"},
        {"eps": 0.0},
        {"eps": -0.5},
        {"kappa": 1.5},
        {"rho": 0.6},
        {"rho": 0.0},
        {"beta": -1.0},
        {"seed": "zero"},
    ])
    def test_validation_rejects(self, kwargs):
        with pytest.raises(ValueError):
            BuildSpec(**kwargs)

    def test_invalid_product_message_lists_products(self):
        with pytest.raises(ValueError, match="emulator, spanner, hopset"):
            BuildSpec(product="nope")

    def test_replace_and_describe(self):
        spec = BuildSpec(product="spanner", eps=0.05)
        other = spec.replace(method="congest", kappa=4.0)
        assert other.key == ("spanner", "congest")
        assert other.eps == 0.05
        assert spec.method == "centralized"  # original untouched
        assert "spanner/congest" in other.describe()
        assert "kappa=4" in other.describe()

    def test_specs_are_comparable(self):
        assert BuildSpec(eps=0.1) == BuildSpec(eps=0.1)
        assert BuildSpec(eps=0.1) != BuildSpec(eps=0.2)

    def test_specs_are_hashable_cache_keys(self):
        specs = {BuildSpec(), BuildSpec(eps=0.1), BuildSpec(),
                 BuildSpec(options={"ruling_set_mode": "greedy"})}
        assert len(specs) == 3
        assert hash(BuildSpec(product="hopset")) == hash(BuildSpec(product="hopset"))

    def test_options_snapshot_is_isolated_from_caller(self):
        options = {"ruling_set_mode": "greedy"}
        spec = BuildSpec(options=options)
        options["ruling_set_mode"] = "bitwise"
        assert spec.options["ruling_set_mode"] == "greedy"


class TestRegistry:
    def test_all_expected_combos_registered(self):
        assert available_builders() == EXPECTED_COMBOS

    def test_available_builders_filter_by_product(self):
        assert available_builders("spanner") == [
            ("spanner", "centralized"), ("spanner", "congest"), ("spanner", "fast"),
        ]

    def test_unknown_combo_raises_keyerror_listing_valid(self):
        with pytest.raises(KeyError) as excinfo:
            get_builder("spanner", "quantum")
        message = str(excinfo.value)
        for product, method in EXPECTED_COMBOS:
            assert f"{product}/{method}" in message

    def test_is_supported(self):
        assert is_supported("emulator", "fast")
        assert is_supported("spanner", "fast")
        assert not is_supported("spanner", "quantum")

    def test_register_rejects_unknown_vocabulary(self):
        with pytest.raises(ValueError):
            register_builder("oracle", "centralized")
        with pytest.raises(ValueError):
            register_builder("emulator", "quantum")

    def test_registration_and_override_roundtrip(self, grid25):
        original = get_builder("emulator", "centralized")

        @register_builder("emulator", "centralized", description="test double")
        def fake_builder(graph, spec):
            return original.fn(graph, spec)

        try:
            assert get_builder("emulator", "centralized").description == "test double"
            assert build(grid25, BuildSpec()).size > 0
        finally:
            register_builder(original.product, original.method,
                             description=original.description)(original.fn)


class TestFacade:
    @pytest.mark.parametrize("product,method", EXPECTED_COMBOS)
    def test_every_combo_builds_and_verifies(self, grid25, product, method):
        result = build(grid25, BuildSpec(product=product, method=method))
        assert isinstance(result, BuildResultAdapter)
        assert isinstance(result, BuildResult)  # runtime-checkable protocol
        assert result.product == product and result.method == method
        assert result.size > 0
        assert len(result.edges) == result.size
        assert result.alpha >= 1.0
        assert result.beta >= 0.0
        assert result.elapsed >= 0.0
        assert result.schedule is not None
        stats = result.stats
        assert stats["num_edges"] == result.size
        assert stats["product"] == product
        report = result.verify(grid25, sample_pairs=40)
        assert report.valid

    def test_unknown_combo_raises_keyerror(self, grid25):
        # Every vocabulary combo is registered now, so deregister one to
        # exercise the facade's KeyError path.
        from repro.api import registry as registry_module

        removed = registry_module._REGISTRY.pop(("spanner", "fast"))
        try:
            with pytest.raises(KeyError, match="spanner"):
                build(grid25, BuildSpec(product="spanner", method="fast"))
        finally:
            registry_module._REGISTRY[("spanner", "fast")] = removed

    def test_fast_spanner_is_subgraph(self, grid25):
        result = build(grid25, BuildSpec(product="spanner", method="fast"))
        assert result.raw.is_subgraph_of(grid25)
        assert result.raw.superclustering_edges == 0
        assert result.raw.interconnection_edges == result.size

    def test_keyword_shorthand(self, grid25):
        result = build(grid25, product="spanner", eps=0.01, kappa=4.0)
        assert result.product == "spanner"
        assert result.spec.eps == 0.01

    def test_keywords_override_spec(self, grid25):
        base = BuildSpec(product="emulator", eps=0.1)
        result = build(grid25, base, eps=0.2)
        assert result.spec.eps == 0.2

    def test_spanner_edges_are_subgraph(self, grid25):
        result = build(grid25, BuildSpec(product="spanner"))
        for u, v, w in result.edges:
            assert w == 1.0
            assert grid25.has_edge(u, v)

    def test_beta_budget_enforced(self, grid25):
        with pytest.raises(ValueError, match="beta budget"):
            build(grid25, BuildSpec(product="emulator", eps=0.1, kappa=4.0, beta=1.0))

    def test_beta_budget_satisfied_passes(self, grid25):
        result = build(grid25, BuildSpec(product="emulator", eps=0.1, kappa=4.0, beta=1e6))
        assert result.beta <= 1e6

    def test_congest_stats_carry_rounds_and_messages(self, grid25):
        result = build(grid25, BuildSpec(product="emulator", method="congest"))
        assert result.stats["rounds"] > 0
        assert result.stats["messages"] > 0

    def test_hopset_uses_registered_emulator_builder(self, grid25):
        # A drop-in registered for (emulator, fast) must also serve the
        # derived hopset/fast builds.
        original = get_builder("emulator", "fast")
        calls = []

        @register_builder("emulator", "fast")
        def counting_builder(graph, spec):
            calls.append(spec)
            return original.fn(graph, spec)

        try:
            build(grid25, BuildSpec(product="hopset", method="fast"))
        finally:
            register_builder(original.product, original.method,
                             description=original.description)(original.fn)
        assert len(calls) == 1
        assert calls[0].product == "emulator"
        assert calls[0].kappa is not None  # hopset ultra-sparse default resolved

    def test_hopset_result_exposes_hopbound(self, grid25):
        result = build(grid25, BuildSpec(product="hopset"))
        assert result.stats["hopbound_estimate"] >= 1
        report = result.verify(grid25, sample_pairs=30)
        assert report.valid
        assert report.hopbound == result.raw.hopbound_estimate
        assert report.worst_excess <= 0  # guarantee holds => non-positive slack

    def test_hooks_fire_and_unregister(self, grid25):
        events = []
        hook = on_build(events.append)
        try:
            result = build(grid25, BuildSpec())
            assert len(events) == 1
            event = events[0]
            assert isinstance(event, BuildEvent)
            assert event.result is result
            assert event.elapsed == result.elapsed
        finally:
            remove_build_hook(hook)
        build(grid25, BuildSpec())
        assert len(events) == 1

    def test_clear_build_hooks(self, grid25):
        events = []
        on_build(events.append)
        clear_build_hooks()
        build(grid25, BuildSpec())
        assert events == []


class TestDeprecatedShims:
    def _edge_set(self, weighted):
        return {(u, v, w) for u, v, w in weighted.edges()}

    def test_build_emulator_shim(self, grid25):
        from repro.core.emulator import build_emulator

        with pytest.warns(DeprecationWarning, match="build_emulator"):
            legacy = build_emulator(grid25, eps=0.1, kappa=4.0)
        facade = build(grid25, BuildSpec(product="emulator", eps=0.1, kappa=4.0))
        assert self._edge_set(legacy.emulator) == self._edge_set(facade.raw.emulator)
        assert legacy.alpha == facade.alpha
        assert legacy.beta == facade.beta

    def test_build_emulator_fast_shim(self, grid25):
        from repro.core.fast_centralized import build_emulator_fast

        with pytest.warns(DeprecationWarning, match="build_emulator_fast"):
            legacy = build_emulator_fast(grid25)
        facade = build(grid25, BuildSpec(product="emulator", method="fast"))
        assert self._edge_set(legacy.emulator) == self._edge_set(facade.raw.emulator)

    def test_build_emulator_congest_shim(self, grid25):
        from repro.distributed.emulator_congest import build_emulator_congest

        with pytest.warns(DeprecationWarning, match="build_emulator_congest"):
            legacy = build_emulator_congest(grid25)
        facade = build(grid25, BuildSpec(product="emulator", method="congest"))
        assert self._edge_set(legacy.emulator) == self._edge_set(facade.raw.emulator)
        assert legacy.rounds == facade.raw.rounds

    def test_build_near_additive_spanner_shim(self, grid25):
        from repro.core.spanner import build_near_additive_spanner

        with pytest.warns(DeprecationWarning, match="build_near_additive_spanner"):
            legacy = build_near_additive_spanner(grid25)
        facade = build(grid25, BuildSpec(product="spanner"))
        assert set(legacy.spanner.edges()) == set(facade.raw.spanner.edges())
        assert legacy.alpha == facade.alpha
        assert legacy.beta == facade.beta

    def test_build_spanner_congest_shim(self, grid25):
        from repro.distributed.spanner_congest import build_spanner_congest

        with pytest.warns(DeprecationWarning, match="build_spanner_congest"):
            legacy = build_spanner_congest(grid25)
        facade = build(grid25, BuildSpec(product="spanner", method="congest"))
        assert set(legacy.spanner.edges()) == set(facade.raw.spanner.edges())

    def test_build_hopset_shim(self, grid25):
        from repro.hopsets.hopset import build_hopset

        with pytest.warns(DeprecationWarning, match="build_hopset"):
            legacy = build_hopset(grid25)
        facade = build(grid25, BuildSpec(product="hopset"))
        assert self._edge_set(legacy.hopset) == self._edge_set(facade.raw.hopset)
        assert legacy.hopbound_estimate == facade.raw.hopbound_estimate
        assert legacy.alpha == facade.alpha
        assert legacy.beta == facade.beta

    def test_each_shim_warns_exactly_once(self, grid25):
        import warnings as warnings_module

        from repro import (
            build_emulator,
            build_emulator_congest,
            build_emulator_fast,
            build_hopset,
            build_near_additive_spanner,
            build_spanner_congest,
        )

        for shim in (build_emulator, build_emulator_fast, build_emulator_congest,
                     build_near_additive_spanner, build_spanner_congest, build_hopset):
            with warnings_module.catch_warnings(record=True) as caught:
                warnings_module.simplefilter("always")
                shim(grid25)
            deprecations = [w for w in caught
                            if issubclass(w.category, DeprecationWarning)]
            assert len(deprecations) == 1, shim.__name__


class TestGridSweep:
    def test_full_grid_covers_supported_surface(self):
        sweep = GridSweep(products=PRODUCTS, methods=METHODS)
        keys = [spec.key for spec in sweep.specs()]
        assert sorted(keys) == EXPECTED_COMBOS
        assert len(sweep) == len(EXPECTED_COMBOS)

    def test_parameter_grid_expands(self):
        sweep = GridSweep(products=("emulator",), methods=("centralized",),
                          eps_values=(0.1, 0.05), kappas=(3.0, 4.0))
        specs = list(sweep.specs())
        assert len(specs) == 4
        assert {(s.eps, s.kappa) for s in specs} == {(0.1, 3.0), (0.1, 4.0),
                                                     (0.05, 3.0), (0.05, 4.0)}

    def test_run_sweep_builds_and_verifies(self, grid25):
        sweep = GridSweep(products=("emulator", "spanner"), methods=("centralized",))
        records = run_sweep({"grid": grid25}, sweep, verify_pairs=30)
        assert len(records) == 2
        assert all(record.verified for record in records)
        table = format_sweep_table(records)
        assert "emulator" in table and "spanner" in table

    def test_run_sweep_with_no_supported_combo_raises(self, grid25):
        # The full product x method vocabulary is registered, so an empty
        # grid is the remaining way to match nothing.
        sweep = GridSweep(products=(), methods=METHODS)
        with pytest.raises(KeyError, match="supported combinations"):
            run_sweep(grid25, sweep)

    def test_run_sweep_accepts_bare_graph(self, grid25):
        sweep = GridSweep(products=("hopset",), methods=("centralized",))
        records = run_sweep(grid25, sweep)
        assert len(records) == 1
        assert records[0].graph_name == "graph"
        assert records[0].verified is None
