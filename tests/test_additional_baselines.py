"""Tests for the Baswana–Sen and +2 additive spanner baselines."""

from __future__ import annotations

import math

import pytest

from repro.analysis.validation import verify_spanner
from repro.baselines.additive_spanners import additive_two_spanner, dominating_set_for_high_degree
from repro.baselines.baswana_sen import baswana_sen_spanner
from repro.graphs import generators
from repro.graphs.graph import Graph


class TestBaswanaSen:
    def test_k1_returns_the_whole_graph(self, random_graph):
        spanner = baswana_sen_spanner(random_graph, k=1, seed=0)
        assert spanner.num_edges == random_graph.num_edges

    def test_invalid_k_rejected(self, path10):
        with pytest.raises(ValueError):
            baswana_sen_spanner(path10, k=0)

    def test_empty_graph_handled(self):
        spanner = baswana_sen_spanner(Graph(5), k=2, seed=0)
        assert spanner.num_edges == 0

    @pytest.mark.parametrize("k", [2, 3])
    def test_stretch_guarantee_on_random_graph(self, random_graph, k):
        spanner = baswana_sen_spanner(random_graph, k=k, seed=11)
        report = verify_spanner(random_graph, spanner, alpha=2 * k - 1, beta=0.0)
        assert report.valid

    def test_stretch_guarantee_on_clique(self, clique8):
        spanner = baswana_sen_spanner(clique8, k=2, seed=5)
        report = verify_spanner(clique8, spanner, alpha=3.0, beta=0.0)
        assert report.valid

    def test_deterministic_given_seed(self, random_graph):
        a = baswana_sen_spanner(random_graph, k=2, seed=42)
        b = baswana_sen_spanner(random_graph, k=2, seed=42)
        assert sorted(a.edges()) == sorted(b.edges())

    def test_output_is_subgraph(self, random_graph):
        spanner = baswana_sen_spanner(random_graph, k=3, seed=1)
        assert all(random_graph.has_edge(u, v) for u, v in spanner.edges())

    def test_sparsifies_a_dense_graph(self):
        dense = generators.complete_graph(40)
        spanner = baswana_sen_spanner(dense, k=2, seed=0)
        # Expected O(k n^{1+1/k}) = O(2 * 40^1.5) ~ 500 << 780 edges of K40;
        # allow generous slack over the expectation.
        assert spanner.num_edges < dense.num_edges


class TestDominatingSet:
    def test_dominates_all_high_degree_vertices(self, random_graph):
        threshold = math.sqrt(random_graph.num_vertices)
        dominators = dominating_set_for_high_degree(random_graph, threshold)
        dominated = set(dominators)
        for d in dominators:
            dominated |= random_graph.neighbors(d)
        for v in random_graph.vertices():
            if random_graph.degree(v) >= threshold:
                assert v in dominated

    def test_no_high_degree_vertices_gives_empty_set(self, path10):
        assert dominating_set_for_high_degree(path10, degree_threshold=5) == []

    def test_star_center_dominated_by_single_vertex(self, star20):
        dominators = dominating_set_for_high_degree(star20, degree_threshold=10)
        assert len(dominators) == 1


class TestAdditiveTwoSpanner:
    def test_plus_two_guarantee_on_random_graph(self, random_graph):
        spanner = additive_two_spanner(random_graph)
        report = verify_spanner(random_graph, spanner, alpha=1.0, beta=2.0)
        assert report.valid

    def test_plus_two_guarantee_on_dense_graph(self):
        dense = generators.complete_graph(30)
        spanner = additive_two_spanner(dense)
        report = verify_spanner(dense, spanner, alpha=1.0, beta=2.0)
        assert report.valid

    def test_low_degree_graph_kept_verbatim(self, path10):
        spanner = additive_two_spanner(path10)
        assert spanner.num_edges == path10.num_edges

    def test_empty_graph(self):
        assert additive_two_spanner(Graph(0)).num_edges == 0

    def test_size_is_subquadratic_on_dense_input(self):
        dense = generators.complete_graph(64)
        spanner = additive_two_spanner(dense)
        n = dense.num_vertices
        # O(n^{3/2} log n) with a small constant; K_n has ~n^2/2 edges.
        assert spanner.num_edges <= 4 * n ** 1.5 * math.log2(n)
        assert spanner.num_edges < dense.num_edges

    def test_output_is_subgraph(self, random_graph):
        spanner = additive_two_spanner(random_graph)
        assert all(random_graph.has_edge(u, v) for u, v in spanner.edges())
