"""Seeded chaos suite: the serving stack under deterministic fault plans.

Every scenario installs a seeded :mod:`repro.faults` plan, exercises a
subsystem the way an operator would, and asserts the paper-level
invariant: every answer the stack returns still satisfies its tagged
``(alpha, beta)`` guarantee.  Faults may cost *availability* (503/504,
staleness, quarantined sweep tasks) — never *correctness*.

Daemons bind port 0 (ephemeral) and run in-process — CONTRIBUTING.md.
"""

from __future__ import annotations

import http.client
import json
import threading
import time

import pytest

from repro import obs
from repro.api import GridSweep, run_sweep
from repro.api.cache import ResultCache
from repro.dist import DistCoordinator, DistWorker, canonical_record
from repro.faults import FaultInjected, active_plan, clear_plan, fault_plan
from repro.graphs import generators
from repro.graphs.shortest_paths import bfs_distances
from repro.serve import LiveEngine, OracleDaemon, RemoteOracle, ServeSpec
from repro.serve.remote import CircuitOpenError, RemoteOracleError

GRAPH = generators.connected_erdos_renyi(40, 0.15, seed=1)
GRID = generators.grid_graph(4, 4)

#: products x methods grid small enough to sweep in-process repeatedly.
SWEEP = GridSweep(products=("emulator", "spanner"), methods=("centralized",))


@pytest.fixture(autouse=True)
def chaos_hygiene():
    """No plan leaks between scenarios; metrics start from zero."""
    clear_plan()
    previous = obs.set_enabled(True)
    obs.reset()
    yield
    clear_plan()
    obs.reset()
    obs.set_enabled(previous)


def _record_key(record):
    """Everything about a sweep record that faults must not change."""
    return (
        record.graph_name,
        record.spec,
        frozenset(record.result.edges),
        record.result.size,
        record.result.alpha,
        record.result.beta,
    )


def _non_support_deletions(engine, count):
    """Graph edges whose deletion does not force a rebuild (not in the emulator)."""
    emulator = engine.raw_result.emulator
    picked = []
    for u, v in sorted(engine.graph.edges()):
        if not emulator.has_edge(u, v):
            picked.append((u, v))
        if len(picked) == count:
            break
    assert len(picked) == count, "workload graph too sparse for this test"
    return picked


def _post(daemon, path, body):
    connection = http.client.HTTPConnection(daemon.host, daemon.port, timeout=10)
    try:
        connection.request("POST", path, body=json.dumps(body).encode(),
                           headers={"Content-Type": "application/json"})
        response = connection.getresponse()
        return response.status, response.getheader("Retry-After"), \
            json.loads(response.read())
    finally:
        connection.close()


# ----------------------------------------------------------------------
# Sweep: worker crashes and poisoned specs
# ----------------------------------------------------------------------
class TestSweepChaos:
    def test_transient_fault_is_retried_to_byte_identical_records(self):
        baseline = run_sweep({"grid": GRID}, SWEEP)
        plan = {"seed": 11,
                "rules": [{"site": "sweep.task", "action": "raise", "nth": 1}]}
        with fault_plan(plan):
            records = run_sweep({"grid": GRID}, SWEEP, task_retries=2)
        # Recovery is invisible in the results...
        assert [_record_key(r) for r in records] == \
            [_record_key(r) for r in baseline]
        # ...but visible in the provenance: the hit task retried.
        assert sum(r.stats["retries"] for r in records) == 1
        assert all(not r.quarantined for r in records)

    def test_poisoned_spec_is_quarantined_and_neighbours_complete(self):
        plan = {"rules": [{"site": "sweep.task", "action": "raise",
                           "where": {"product": "spanner"}}]}
        with fault_plan(plan):
            records = run_sweep({"grid": GRID}, SWEEP,
                                task_retries=1, on_error="quarantine")
        quarantined = [r for r in records if r.quarantined]
        healthy = [r for r in records if not r.quarantined]
        assert quarantined and healthy
        assert all(r.spec.product == "spanner" for r in quarantined)
        for record in quarantined:
            assert record.stats["quarantined"] is True
            assert record.stats["retries"] == 1
            assert "injected fault" in record.stats["error"]
            assert record.verified is None and record.result is None
            assert "QUARANTINED" in record.row
        # The surviving half still meets its guarantee on the real graph.
        for record in healthy:
            assert record.result.verify(GRID, sample_pairs=10).valid

    def test_default_on_error_raises_the_original_failure(self):
        plan = {"rules": [{"site": "sweep.task", "action": "raise",
                           "where": {"product": "spanner"}}]}
        with fault_plan(plan):
            with pytest.raises(FaultInjected):
                run_sweep({"grid": GRID}, SWEEP, task_retries=0)

    def test_parallel_workers_report_failures_without_killing_the_pool(self):
        plan = {"rules": [{"site": "sweep.task", "action": "raise",
                           "where": {"product": "spanner"}}]}
        with fault_plan(plan):
            records = run_sweep({"grid": GRID}, SWEEP, workers=2,
                                task_retries=0, on_error="quarantine")
        assert sum(r.quarantined for r in records) == \
            sum(1 for r in records if r.spec.product == "spanner")
        assert any(not r.quarantined for r in records)
        with fault_plan(plan):
            with pytest.raises(RuntimeError, match="failed after"):
                run_sweep({"grid": GRID}, SWEEP, workers=2, task_retries=0)


# ----------------------------------------------------------------------
# Daemon: overload shedding, deadlines, recovery
# ----------------------------------------------------------------------
class TestDaemonOverloadChaos:
    def test_overload_sheds_503_answers_stay_correct_and_health_recovers(self):
        plan = {"rules": [{"site": "daemon.request", "action": "delay",
                           "delay_seconds": 0.2, "where": {"endpoint": "/query"}}]}
        with fault_plan(plan):
            with OracleDaemon(port=0, max_inflight=2) as daemon:
                daemon.add_oracle("default", GRAPH, ServeSpec(backend="exact"))
                daemon.start()
                results = []
                lock = threading.Lock()
                barrier = threading.Barrier(10)

                def client(i):
                    barrier.wait(timeout=10)
                    u, v = i % 5, 7 + i % 9
                    status, retry_after, body = _post(
                        daemon, "/query", {"u": u, "v": v})
                    with lock:
                        results.append((u, v, status, retry_after, body))

                threads = [threading.Thread(target=client, args=(i,))
                           for i in range(10)]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join(timeout=20)

                statuses = [status for _, _, status, _, _ in results]
                assert statuses.count(200) >= 1
                assert statuses.count(503) >= 1
                assert set(statuses) <= {200, 503}
                for u, v, status, retry_after, body in results:
                    if status == 200:
                        # Zero wrong answers: every served response is
                        # exact (the backend is the exact oracle).
                        exact = bfs_distances(GRAPH, u).get(v, float("inf"))
                        assert body["answer"] == exact
                    else:
                        assert retry_after is not None
                        assert "overload" in body["error"]
                        assert body["retry_after"] > 0
                assert daemon.shed_requests == statuses.count(503)
                assert obs.get_metric("repro_daemon_shed_total",
                                      reason="overload") == statuses.count(503)
                assert "repro_daemon_shed_total" in daemon.metrics_text()

                # Load gone: the daemon reports healthy and keeps serving.
                assert daemon.healthz()["status"] == "healthy"
                status, _, body = _post(daemon, "/query", {"u": 0, "v": 1})
                assert status == 200
                assert body["answer"] == bfs_distances(GRAPH, 0).get(1, float("inf"))

    def test_deadline_overrun_is_a_504_with_retry_after(self):
        plan = {"rules": [{"site": "serve.single_source", "action": "delay",
                           "delay_seconds": 0.3}]}
        with fault_plan(plan):
            with OracleDaemon(port=0, default_deadline_ms=100) as daemon:
                daemon.add_oracle("default", GRAPH, ServeSpec(backend="exact"))
                daemon.start()
                # Two distinct sources: the first burns the whole budget,
                # the deadline check before the second trips determinists.
                status, retry_after, body = _post(
                    daemon, "/query_batch", {"pairs": [[0, 1], [2, 3]]})
                assert status == 504
                assert retry_after is not None
                assert "deadline" in body["error"]
                assert daemon.deadline_exceeded == 1
                assert obs.get_metric("repro_daemon_deadline_exceeded_total",
                                      endpoint="/query_batch") == 1

    def test_client_requested_deadline_is_honoured(self):
        plan = {"rules": [{"site": "serve.single_source", "action": "delay",
                           "delay_seconds": 0.3}]}
        with fault_plan(plan):
            with OracleDaemon(port=0) as daemon:  # no server-side default
                daemon.add_oracle("default", GRAPH, ServeSpec(backend="exact"))
                daemon.start()
                status, _, body = _post(
                    daemon, "/query_batch",
                    {"pairs": [[0, 1], [2, 3]], "deadline_ms": 100})
                assert status == 504
                assert "deadline" in body["error"]
                # Without a deadline the same request just runs long.
                status, _, body = _post(
                    daemon, "/query_batch", {"pairs": [[4, 5]]})
                assert status == 200


# ----------------------------------------------------------------------
# Live engine: rebuild crashes, churn under failure
# ----------------------------------------------------------------------
class TestLiveRebuildChaos:
    def test_rebuild_crash_serves_stale_tagged_answers_then_recovers(self):
        plan = {"rules": [{"site": "live.rebuild", "action": "raise",
                           "times": 2}]}
        spec = ServeSpec(live=True, live_rebuild_after=1, live_repair=False)
        live = LiveEngine(GRAPH, spec,
                          rebuild_retry_base=0.02, rebuild_retry_cap=0.1)
        try:
            with fault_plan(plan):
                deletions = _non_support_deletions(live, 2)
                live.mutate(deletes=[deletions[0]])
                # The scheduled rebuild is crashing; the engine keeps
                # answering on the last good version, still guaranteed.
                observed = []
                for _ in range(10):
                    for u, v in [(0, 7), (3, 11), (5, 2)]:
                        answer = live.query_tagged(u, v)
                        assert answer.version == 0
                        if answer.guaranteed:
                            observed.append((u, v, answer))
                assert observed, "plain deletions must keep the guarantee"
                # Audit every answer against the graph its version covers.
                by_version = {v.version: v for v in live.versions()}
                for u, v, answer in observed:
                    version = by_version[answer.version]
                    frozen = live.graph_at(version.watermark)
                    exact = bfs_distances(frozen, u).get(v, float("inf"))
                    if exact == float("inf"):
                        assert answer.value == float("inf")
                    else:
                        assert answer.value >= exact - 1e-9
                        assert answer.value <= \
                            version.alpha * exact + version.beta + 1e-9
                # Capped-backoff retries outlive the 2 injected crashes.
                assert live.quiesce(timeout=60.0)
            stats = live.stats()["live"]
            assert stats["rebuild_failures"] == 2
            assert stats["consecutive_rebuild_failures"] == 0
            assert stats["degraded"] is False
            assert not live.degraded
            assert obs.get_metric("repro_live_rebuild_failures_total") == 2
            assert obs.get_metric("repro_live_degraded") == 0.0
            fresh = live.query_tagged(0, 7)
            assert fresh.staleness == 0 and fresh.guaranteed
        finally:
            live.close()

    def test_churn_with_seeded_crash_storm_preserves_every_guarantee(self):
        plan = {"seed": 5, "rules": [{"site": "live.rebuild", "action": "raise",
                                      "probability": 0.5, "times": 3}]}
        spec = ServeSpec(live=True, live_rebuild_after=2, live_repair=False)
        live = LiveEngine(GRAPH, spec,
                          rebuild_retry_base=0.02, rebuild_retry_cap=0.1)
        try:
            with fault_plan(plan):
                observed = []
                pairs = [(u, v) for u in range(0, 40, 7) for v in range(0, 40, 5)]
                for edge in _non_support_deletions(live, 6):
                    live.mutate(deletes=[edge])
                    for u, v in pairs:
                        answer = live.query_tagged(u, v)
                        if answer.guaranteed:
                            observed.append((u, v, answer))
                assert live.quiesce(timeout=60.0)
            assert observed
            by_version = {v.version: v for v in live.versions()}
            graphs = {}
            for u, v, answer in observed:
                version = by_version[answer.version]
                if version.version not in graphs:
                    graphs[version.version] = live.graph_at(version.watermark)
                exact = bfs_distances(graphs[version.version], u).get(v, float("inf"))
                if exact == float("inf"):
                    assert answer.value == float("inf")
                else:
                    assert answer.value >= exact - 1e-9
                    assert answer.value <= \
                        version.alpha * exact + version.beta + 1e-9
        finally:
            live.close()


# ----------------------------------------------------------------------
# Remote: transport flakiness and the circuit breaker
# ----------------------------------------------------------------------
class TestRemoteBreakerChaos:
    def test_injected_transport_fault_is_retried_transparently(self):
        with OracleDaemon(port=0) as daemon:
            daemon.add_oracle("default", GRAPH, ServeSpec(backend="exact"))
            daemon.start()
            remote = RemoteOracle(daemon.url, retries=2, backoff=0.001, seed=1)
            plan = {"rules": [{"site": "remote.request", "action": "raise",
                               "nth": 1}]}
            with fault_plan(plan):
                assert remote.query(0, 1) == \
                    bfs_distances(GRAPH, 0).get(1, float("inf"))
            stats = remote.stats()
            assert stats["retried_requests"] >= 1
            assert stats["breaker_state"] == "closed"

    def test_breaker_opens_fast_fails_and_recloses_after_restart(self):
        with OracleDaemon(port=0) as daemon:
            daemon.add_oracle("default", GRAPH, ServeSpec(backend="exact"))
            daemon.start()
            port = daemon.port
            remote = RemoteOracle(daemon.url, retries=0, backoff=0.001, seed=3,
                                  breaker_threshold=2, breaker_reset=0.2)
            exact = bfs_distances(GRAPH, 0).get(1, float("inf"))
            assert remote.query(0, 1) == exact

        # The daemon is gone: exhausted rounds open the breaker...
        for _ in range(2):
            with pytest.raises(RemoteOracleError):
                remote.query(0, 1)
        assert remote.stats()["breaker_state"] == "open"
        assert remote.stats()["breaker_opens"] == 1
        assert obs.get_metric("repro_remote_breaker_state",
                              url=remote.url) == 1.0
        # ...and while open, calls fail fast without a round trip.
        started = time.perf_counter()
        with pytest.raises(CircuitOpenError):
            remote.query(0, 1)
        assert time.perf_counter() - started < 0.1
        assert remote.stats()["fast_failures"] >= 1

        # Same port comes back: the half-open probe re-closes the breaker.
        with OracleDaemon(port=port) as revived:
            revived.add_oracle("default", GRAPH, ServeSpec(backend="exact"))
            revived.start()
            time.sleep(0.25)  # past the (jittered, <= 0.2s) open window
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                try:
                    assert remote.query(0, 1) == exact
                    break
                except (RemoteOracleError, CircuitOpenError):
                    time.sleep(0.1)
            else:
                pytest.fail("breaker never re-closed after the daemon revived")
            assert remote.stats()["breaker_state"] == "closed"
            assert obs.get_metric("repro_remote_breaker_state",
                                  url=remote.url) == 0.0


# ----------------------------------------------------------------------
# Distributed sweeps: worker kills, stragglers, coordinator restarts
# ----------------------------------------------------------------------
class TestDistChaos:
    """The distributed executor under seeded ``dist.*`` fault plans.

    The invariant matches the rest of this suite: faults cost
    availability (reassigned leases, burned attempts, degraded
    resumability) — never correctness.  Every phase must end with
    records byte-identical to the serial executor: zero lost, zero
    duplicated, zero wrong.
    """

    DIST_SWEEP = GridSweep(products=("emulator", "spanner"),
                           methods=("centralized",), eps_values=(None, 0.25))

    def _baseline(self):
        return [_record_key(r) for r in run_sweep({"grid": GRID},
                                                  self.DIST_SWEEP)]

    def _dist_tasks(self):
        return [(index, "grid", GRID, spec)
                for index, spec in enumerate(self.DIST_SWEEP.specs())]

    def test_worker_crash_mid_sweep_loses_and_duplicates_nothing(self):
        baseline = self._baseline()
        # local-0 dies (silently, SIGKILL-style) on its first lease: no
        # /complete, no more heartbeats.  The lease TTL expires, the
        # reaper re-dispatches, local-1 finishes the sweep.
        plan = {"seed": 19,
                "rules": [{"site": "dist.worker", "action": "raise",
                           "nth": 1, "where": {"worker": "local-0"}}]}
        with fault_plan(plan):
            records = run_sweep(
                {"grid": GRID}, self.DIST_SWEEP,
                dist={"worker_mode": "thread", "local_workers": 2,
                      "lease_ttl": 0.4})
            crashes = active_plan().stats()["dist.worker"]["injected"]
        assert crashes == 1
        assert [_record_key(r) for r in records] == baseline
        assert obs.get_metric("repro_dist_reassignments_total") >= 1
        # The dead worker's lease burned one attempt; nothing quarantined.
        assert all(not r.quarantined for r in records)

    def test_straggler_past_ttl_is_reassigned_and_its_late_delivery_ignored(self):
        baseline = self._baseline()
        # local-0's first build stalls past the TTL *and* its heartbeats
        # fail: the coordinator reaps the lease and re-dispatches.  The
        # straggler eventually delivers on its dead lease — idempotent
        # completion discards or accepts it without changing the records.
        plan = {"seed": 23,
                "rules": [
                    {"site": "dist.task", "action": "delay",
                     "delay_seconds": 1.0, "nth": 1,
                     "where": {"worker": "local-0"}},
                    {"site": "dist.heartbeat", "action": "raise",
                     "where": {"worker": "local-0"}},
                ]}
        with fault_plan(plan):
            records = run_sweep(
                {"grid": GRID}, self.DIST_SWEEP,
                dist={"worker_mode": "thread", "local_workers": 2,
                      "lease_ttl": 0.3})
            stalls = active_plan().stats()["dist.task"]["injected"]
        assert stalls == 1
        assert [_record_key(r) for r in records] == baseline
        assert len(records) == len(baseline)  # zero lost, zero duplicated
        assert obs.get_metric("repro_dist_reassignments_total") >= 1

    def test_transient_coordinator_faults_are_retried_to_identical_records(self):
        baseline = self._baseline()
        # Every protocol endpoint hiccups (503 + Retry-After) a bounded
        # number of times; workers ride it out with backoff.  The slowed
        # builds guarantee heartbeats actually fire mid-build.
        plan = {"seed": 29,
                "rules": [
                    {"site": "dist.lease", "action": "raise", "times": 2},
                    {"site": "dist.complete", "action": "raise", "times": 2},
                    {"site": "dist.heartbeat", "action": "raise", "times": 2},
                    {"site": "dist.task", "action": "delay",
                     "delay_seconds": 0.3},
                ]}
        with fault_plan(plan):
            records = run_sweep(
                {"grid": GRID}, self.DIST_SWEEP,
                dist={"worker_mode": "thread", "local_workers": 2,
                      "lease_ttl": 0.9})
            stats = active_plan().stats()
        assert [_record_key(r) for r in records] == baseline
        assert stats["dist.lease"]["injected"] >= 1
        assert stats["dist.complete"]["injected"] >= 1
        assert stats["dist.heartbeat"]["injected"] >= 1

    def test_journal_faults_degrade_resumability_never_the_sweep(self, tmp_path):
        store = ResultCache(tmp_path / "cache")
        journal_path = str(tmp_path / "sweep.journal")
        # Every journal write fails: the sweep must still complete, the
        # coordinator just loses its restart insurance.
        plan = {"rules": [{"site": "dist.journal", "action": "raise"}]}
        with fault_plan(plan):
            coordinator = DistCoordinator(
                self._dist_tasks(), store, journal=journal_path).start()
            try:
                worker = DistWorker(coordinator.url, store, worker_id="w1",
                                    give_up_after=5.0)
                worker.run()
                assert coordinator.done
                assert coordinator.journal.errors >= len(self._dist_tasks())
            finally:
                coordinator.close()
        # A restart finds no usable journal: honest re-run, not a crash.
        fresh = DistCoordinator(self._dist_tasks(), store,
                                journal=journal_path)
        try:
            assert fresh.replayed == 0
        finally:
            fresh.close()

    def test_coordinator_restart_mid_sweep_resumes_and_stays_byte_identical(
            self, tmp_path):
        serial = run_sweep({"grid": GRID}, self.DIST_SWEEP)
        store = ResultCache(tmp_path / "cache")
        journal_path = str(tmp_path / "sweep.journal")
        # Phase 1: the first coordinator dies after two completions.
        first = DistCoordinator(self._dist_tasks(), store,
                                journal=journal_path).start()
        try:
            DistWorker(first.url, store, worker_id="w1", max_tasks=2,
                       give_up_after=5.0).run()
            assert first.completions == 2
        finally:
            first.close()
        # Phase 2: a restarted coordinator replays the journal and only
        # serves the remainder; provenance of replayed tasks survives.
        second = DistCoordinator(self._dist_tasks(), store,
                                 journal=journal_path).start()
        try:
            assert second.replayed == 2
            DistWorker(second.url, store, worker_id="w2",
                       give_up_after=5.0).run()
            assert second.done
            outcomes = second.outcomes()
        finally:
            second.close()
        got = [canonical_record(result) for _, _, result, _, _ in outcomes]
        assert got == [canonical_record(r.result) for r in serial]
        workers = [worker for _, worker, _, _, _ in outcomes]
        assert workers.count("w1") == 2 and workers.count("w2") == 2
        assert obs.get_metric("repro_dist_journal_replays_total") == 2
