"""Tests for the deterministic ruling-set constructions."""

from __future__ import annotations

import math

import pytest

from repro.congest.network import SynchronousNetwork
from repro.congest.ruling_sets import (
    bitwise_ruling_set,
    greedy_ruling_set,
    verify_ruling_set,
)
from repro.graphs.shortest_paths import bfs_distances


class TestGreedyRulingSet:
    @pytest.mark.parametrize("separation", [2, 3, 5])
    def test_properties_on_random_graph(self, random_graph, separation):
        candidates = list(random_graph.vertices())
        result = greedy_ruling_set(random_graph, candidates, separation)
        assert verify_ruling_set(random_graph, candidates, result.members,
                                 separation, result.domination)

    def test_subset_candidates(self, grid6x6):
        candidates = [v for v in grid6x6.vertices() if v % 2 == 0]
        result = greedy_ruling_set(grid6x6, candidates, 3)
        assert result.members <= set(candidates)
        assert verify_ruling_set(grid6x6, candidates, result.members, 3, result.domination)

    def test_separation_one_selects_everything(self, path10):
        result = greedy_ruling_set(path10, list(path10.vertices()), 1)
        assert result.members == set(path10.vertices())

    def test_pairwise_distance_at_least_separation(self, random_graph):
        result = greedy_ruling_set(random_graph, list(random_graph.vertices()), 4)
        members = sorted(result.members)
        for i, u in enumerate(members):
            dist = bfs_distances(random_graph, u)
            for v in members[i + 1:]:
                assert dist.get(v, float("inf")) >= 4

    def test_domination_radius(self, random_graph):
        sep = 5
        result = greedy_ruling_set(random_graph, list(random_graph.vertices()), sep)
        assert result.domination == sep - 1

    def test_empty_candidates(self, path10):
        result = greedy_ruling_set(path10, [], 3)
        assert result.members == set()

    def test_single_candidate(self, path10):
        result = greedy_ruling_set(path10, [4], 3)
        assert result.members == {4}

    def test_round_charging(self, path10):
        net = SynchronousNetwork(path10)
        greedy_ruling_set(path10, list(path10.vertices()), 3, net=net, charged_rounds=12)
        assert net.charged_rounds == 12

    def test_default_round_charge(self, path10):
        net = SynchronousNetwork(path10)
        result = greedy_ruling_set(path10, list(path10.vertices()), 3, net=net)
        assert result.rounds == int(round(3 * math.ceil(math.log2(10))))

    def test_deterministic(self, random_graph):
        a = greedy_ruling_set(random_graph, list(random_graph.vertices()), 3)
        b = greedy_ruling_set(random_graph, list(random_graph.vertices()), 3)
        assert a.members == b.members


class TestBitwiseRulingSet:
    @pytest.mark.parametrize("separation", [2, 3, 4])
    def test_properties_centralized(self, random_graph, separation):
        candidates = list(random_graph.vertices())
        result = bitwise_ruling_set(random_graph, candidates, separation)
        assert verify_ruling_set(random_graph, candidates, result.members,
                                 separation, result.domination)

    def test_properties_on_simulator(self, grid6x6):
        net = SynchronousNetwork(grid6x6)
        candidates = list(grid6x6.vertices())
        result = bitwise_ruling_set(grid6x6, candidates, 3, net=net)
        assert verify_ruling_set(grid6x6, candidates, result.members, 3, result.domination)
        assert net.rounds_elapsed > 0

    def test_subset_candidates(self, grid6x6):
        candidates = [0, 7, 14, 21, 28, 35]
        result = bitwise_ruling_set(grid6x6, candidates, 4)
        assert result.members <= set(candidates)
        assert verify_ruling_set(grid6x6, candidates, result.members, 4, result.domination)

    def test_empty_candidates(self, path10):
        result = bitwise_ruling_set(path10, [], 3)
        assert result.members == set()

    def test_domination_weaker_than_greedy(self, random_graph):
        sep = 4
        greedy = greedy_ruling_set(random_graph, list(random_graph.vertices()), sep)
        bitwise = bitwise_ruling_set(random_graph, list(random_graph.vertices()), sep)
        assert bitwise.domination >= greedy.domination


class TestVerifyRulingSet:
    def test_rejects_non_subset(self, path10):
        assert not verify_ruling_set(path10, [0, 1], {5}, 2, 3)

    def test_rejects_too_close_members(self, path10):
        assert not verify_ruling_set(path10, list(range(10)), {0, 1}, 3, 9)

    def test_rejects_undominated_candidate(self, path10):
        assert not verify_ruling_set(path10, list(range(10)), {0}, 2, 3)

    def test_accepts_valid(self, path10):
        assert verify_ruling_set(path10, list(range(10)), {0, 5}, 4, 4)

    def test_empty_members_nonempty_candidates(self, path10):
        assert not verify_ruling_set(path10, [3], set(), 2, 2)
