"""Tests for the lollipop, Watts–Strogatz and complete-bipartite generators."""

from __future__ import annotations

import pytest

from repro.core.emulator import build_emulator
from repro.graphs import generators
from repro.graphs.shortest_paths import diameter


class TestLollipop:
    def test_vertex_and_edge_counts(self):
        g = generators.lollipop_graph(5, 4)
        assert g.num_vertices == 9
        assert g.num_edges == 5 * 4 // 2 + 4

    def test_is_connected_with_long_diameter(self):
        g = generators.lollipop_graph(6, 10)
        assert g.is_connected()
        assert diameter(g) >= 10

    def test_zero_length_stick_is_a_clique(self):
        g = generators.lollipop_graph(4, 0)
        assert g.num_edges == 6

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            generators.lollipop_graph(0, 3)
        with pytest.raises(ValueError):
            generators.lollipop_graph(3, -1)

    def test_emulator_size_bound_holds_on_lollipop(self):
        g = generators.lollipop_graph(12, 20)
        result = build_emulator(g, eps=0.1, kappa=4.0)
        assert result.within_size_bound()


class TestWattsStrogatz:
    def test_no_rewiring_is_a_ring_lattice(self):
        g = generators.watts_strogatz(20, 4, p=0.0, seed=1)
        assert g.num_edges == 20 * 2
        assert all(g.degree(v) == 4 for v in g.vertices())

    def test_rewiring_preserves_edge_count(self):
        g = generators.watts_strogatz(30, 4, p=0.5, seed=7)
        assert g.num_edges == 30 * 2

    def test_deterministic_given_seed(self):
        a = generators.watts_strogatz(24, 4, p=0.3, seed=5)
        b = generators.watts_strogatz(24, 4, p=0.3, seed=5)
        assert a == b

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            generators.watts_strogatz(10, 1, p=0.1)
        with pytest.raises(ValueError):
            generators.watts_strogatz(10, 4, p=1.5)

    def test_full_rewiring_keeps_simple_graph(self):
        g = generators.watts_strogatz(16, 4, p=1.0, seed=3)
        # Simple graph: no vertex exceeds n-1 neighbors and the count is stable.
        assert g.num_edges == 16 * 2
        assert all(g.degree(v) <= 15 for v in g.vertices())


class TestCompleteBipartite:
    def test_counts(self):
        g = generators.complete_bipartite_graph(3, 4)
        assert g.num_vertices == 7
        assert g.num_edges == 12

    def test_no_edges_within_a_part(self):
        g = generators.complete_bipartite_graph(3, 4)
        assert not any(g.has_edge(u, v) for u in range(3) for v in range(3) if u != v)
        assert not any(
            g.has_edge(u, v) for u in range(3, 7) for v in range(3, 7) if u != v
        )

    def test_degenerate_parts(self):
        assert generators.complete_bipartite_graph(0, 5).num_edges == 0
        with pytest.raises(ValueError):
            generators.complete_bipartite_graph(-1, 2)

    def test_emulator_on_star_like_bipartite(self):
        # K_{1,r} is the star; K_{2,r} stresses the popular-cluster logic.
        g = generators.complete_bipartite_graph(2, 30)
        result = build_emulator(g, eps=0.1, kappa=4.0)
        assert result.within_size_bound()
