"""Tests for the CONGEST synchronous network simulator."""

from __future__ import annotations

import pytest

from repro.congest.message import MAX_WORDS_PER_MESSAGE, Message, payload_words
from repro.congest.network import BandwidthViolation, SynchronousNetwork


class TestMessage:
    def test_payload_words(self):
        assert payload_words((1, 2, 3)) == 3

    def test_message_word_limit(self):
        with pytest.raises(ValueError):
            Message(src=0, dst=1, payload=tuple(range(MAX_WORDS_PER_MESSAGE + 1)), round_sent=0)

    def test_message_is_frozen(self):
        msg = Message(src=0, dst=1, payload=(1,), round_sent=0)
        with pytest.raises(AttributeError):
            msg.src = 2  # type: ignore[misc]


class TestSendDeliver:
    def test_basic_delivery(self, path10):
        net = SynchronousNetwork(path10)
        net.send(0, 1, ("hello", 7))
        delivered = net.deliver()
        assert list(delivered) == [1]
        assert delivered[1][0].payload == ("hello", 7)
        assert net.current_round == 1
        assert net.total_messages == 1

    def test_send_on_non_edge_rejected(self, path10):
        net = SynchronousNetwork(path10)
        with pytest.raises(ValueError):
            net.send(0, 5, (1,))

    def test_bandwidth_one_message_per_directed_edge(self, path10):
        net = SynchronousNetwork(path10)
        net.send(0, 1, (1,))
        with pytest.raises(BandwidthViolation):
            net.send(0, 1, (2,))

    def test_both_directions_allowed_same_round(self, path10):
        net = SynchronousNetwork(path10)
        net.send(0, 1, (1,))
        net.send(1, 0, (2,))
        delivered = net.deliver()
        assert set(delivered) == {0, 1}

    def test_oversized_payload_rejected(self, path10):
        net = SynchronousNetwork(path10)
        with pytest.raises(BandwidthViolation):
            net.send(0, 1, tuple(range(10)))

    def test_non_strict_mode_records_violations(self, path10):
        net = SynchronousNetwork(path10, strict=False)
        net.send(0, 1, (1,))
        net.send(0, 1, (2,))
        assert net.bandwidth_violations == 1
        assert net.total_messages == 1

    def test_edge_reusable_next_round(self, path10):
        net = SynchronousNetwork(path10)
        net.send(0, 1, (1,))
        net.deliver()
        net.send(0, 1, (2,))  # must not raise
        delivered = net.deliver()
        assert delivered[1][0].payload == (2,)

    def test_run_rounds(self, path10):
        net = SynchronousNetwork(path10)
        net.run_rounds(5)
        assert net.current_round == 5


class TestAccounting:
    def test_charge_rounds(self, path10):
        net = SynchronousNetwork(path10)
        net.charge_rounds(10)
        net.charge_rounds(2.6)
        assert net.charged_rounds == 13
        assert net.rounds_elapsed == 13

    def test_charge_rounds_negative_rejected(self, path10):
        net = SynchronousNetwork(path10)
        with pytest.raises(ValueError):
            net.charge_rounds(-1)

    def test_charge_messages(self, path10):
        net = SynchronousNetwork(path10)
        net.charge_messages(17)
        assert net.total_messages == 17
        with pytest.raises(ValueError):
            net.charge_messages(-3)

    def test_rounds_elapsed_combines(self, path10):
        net = SynchronousNetwork(path10)
        net.send(0, 1, (1,))
        net.deliver()
        net.charge_rounds(4)
        assert net.rounds_elapsed == 5

    def test_max_messages_per_round(self, grid6x6):
        net = SynchronousNetwork(grid6x6)
        net.send(0, 1, (1,))
        net.send(1, 2, (1,))
        net.deliver()
        net.send(2, 3, (1,))
        net.deliver()
        assert net.max_messages_per_round == 2

    def test_reset_counters(self, path10):
        net = SynchronousNetwork(path10)
        net.send(0, 1, (1,))
        net.deliver()
        net.charge_rounds(3)
        net.reset_counters()
        assert net.rounds_elapsed == 0
        assert net.total_messages == 0
        assert net.current_round == 0

    def test_repr(self, path10):
        net = SynchronousNetwork(path10)
        assert "n=10" in repr(net)
