"""Tests for the decremental (deletion-only) emulator oracle.

Since 1.7.0 the oracle is a deprecated shim over
:class:`repro.serve.live.LiveEngine` — the legacy surface must keep
working (and warning), and must answer exactly like the serve stack it
now wraps.
"""

from __future__ import annotations

import warnings

import pytest

from repro.applications.dynamic import DecrementalEmulatorOracle
from repro.graphs import generators
from repro.graphs.shortest_paths import bfs_distances
from repro.serve import DistanceOracle, LiveEngine, ServeSpec
from repro.serve import load as serve_load


class TestConstruction:
    def test_initial_build_does_not_count_as_rebuild(self, random_graph):
        oracle = DecrementalEmulatorOracle(random_graph, eps=0.1)
        assert oracle.stats.rebuilds == 0
        assert oracle.stats.deletions == 0

    def test_caller_graph_is_not_mutated(self, random_graph):
        edges_before = random_graph.num_edges
        oracle = DecrementalEmulatorOracle(random_graph, eps=0.1)
        oracle.delete_edge(*next(iter(sorted(random_graph.edges()))))
        assert random_graph.num_edges == edges_before

    def test_invalid_rebuild_threshold_rejected(self, path10):
        with pytest.raises(ValueError):
            DecrementalEmulatorOracle(path10, rebuild_every=0)

    def test_guarantee_exposed(self, random_graph):
        oracle = DecrementalEmulatorOracle(random_graph, eps=0.1, kappa=4.0)
        assert oracle.alpha >= 1.0
        assert oracle.beta > 0.0


class TestDeletions:
    def test_deleting_missing_edge_is_a_noop(self, path10):
        oracle = DecrementalEmulatorOracle(path10, eps=0.1)
        assert not oracle.delete_edge(0, 5)
        assert oracle.stats.deletions == 0

    def test_deleting_existing_edge_updates_graph(self, path10):
        oracle = DecrementalEmulatorOracle(path10, eps=0.1, rebuild_every=None)
        assert oracle.delete_edge(4, 5)
        assert not oracle.graph.has_edge(4, 5)
        assert oracle.stats.deletions == 1

    def test_deleting_supporting_edge_forces_rebuild(self, path10):
        # On a path every emulator edge of weight 1 is a graph edge, so the
        # deletion must force a rebuild to avoid underestimating distances.
        oracle = DecrementalEmulatorOracle(path10, eps=0.1, rebuild_every=None)
        supported = [
            (u, v) for u, v, w in oracle.emulator_result.emulator.edges() if w <= 1.0
        ]
        if not supported:
            pytest.skip("emulator has no weight-1 edge on this input")
        oracle.delete_edge(*supported[0])
        assert oracle.stats.forced_rebuilds == 1

    def test_periodic_rebuild_triggers(self, random_graph):
        oracle = DecrementalEmulatorOracle(random_graph, eps=0.1, rebuild_every=3)
        deleted = 0
        for u, v in sorted(random_graph.edges()):
            # Pick edges that are not in the emulator to avoid forced rebuilds.
            if not oracle.emulator_result.emulator.has_edge(u, v):
                oracle.delete_edge(u, v)
                deleted += 1
            if deleted >= 3:
                break
        assert oracle.stats.rebuilds >= 1

    def test_batch_deletion_reports_count(self, random_graph):
        oracle = DecrementalEmulatorOracle(random_graph, eps=0.1)
        edges = sorted(random_graph.edges())[:5]
        assert oracle.delete_edges(edges + [(0, 0 + 1)] * 0) == 5


class TestQueries:
    def test_query_identity_is_zero(self, random_graph):
        oracle = DecrementalEmulatorOracle(random_graph, eps=0.1)
        assert oracle.query(7, 7) == 0.0

    def test_query_counts_tracked(self, random_graph):
        oracle = DecrementalEmulatorOracle(random_graph, eps=0.1)
        oracle.query(0, 1)
        oracle.single_source(0)
        assert oracle.stats.queries == 2

    def test_answers_respect_guarantee_right_after_a_rebuild(self, small_random_graph):
        oracle = DecrementalEmulatorOracle(small_random_graph, eps=0.1, rebuild_every=1)
        # rebuild_every=1 forces a rebuild after every deletion, so every
        # answer is computed on an emulator of the *current* graph.
        removable = [
            (u, v)
            for u, v in sorted(small_random_graph.edges())
            if small_random_graph.degree(u) > 1 and small_random_graph.degree(v) > 1
        ][:5]
        oracle.delete_edges(removable)
        current = oracle.graph
        exact = bfs_distances(current, 0)
        for target, dg in exact.items():
            if target == 0:
                continue
            answer = oracle.query(0, target)
            assert answer >= dg - 1e-9
            assert answer <= oracle.alpha * dg + oracle.beta + 1e-9

    def test_disconnection_reported_as_infinity(self):
        graph = generators.path_graph(6)
        oracle = DecrementalEmulatorOracle(graph, eps=0.1, rebuild_every=1)
        oracle.delete_edge(2, 3)
        assert oracle.query(0, 5) == float("inf")

    def test_out_of_range_query_rejected(self, path10):
        oracle = DecrementalEmulatorOracle(path10, eps=0.1)
        with pytest.raises(ValueError):
            oracle.query(0, 10)


class TestShimOverLiveEngine:
    def test_construction_warns_deprecation(self, path10):
        with pytest.warns(DeprecationWarning, match="DecrementalEmulatorOracle"):
            DecrementalEmulatorOracle(path10, eps=0.1)

    def test_conforms_to_distance_oracle_protocol(self, random_graph):
        oracle = DecrementalEmulatorOracle(random_graph, eps=0.1)
        assert isinstance(oracle, DistanceOracle)

    def test_backed_by_a_live_engine(self, random_graph):
        oracle = DecrementalEmulatorOracle(random_graph, eps=0.1, rebuild_every=5)
        live = oracle.live_engine
        assert isinstance(live, LiveEngine)
        # The shim pins the deletions-only configuration.
        assert live.spec.live_sync
        assert not live.spec.live_repair
        assert live.spec.live_rebuild_after == 5

    def test_stats_attribute_and_callable_duality(self, random_graph):
        oracle = DecrementalEmulatorOracle(random_graph, eps=0.1, rebuild_every=None)
        oracle.delete_edges(sorted(random_graph.edges())[:2])
        oracle.query(0, 1)
        # Legacy attribute surface.
        assert oracle.stats.deletions == 2
        assert oracle.stats.amortized_rebuild_ratio >= 0.0
        # Protocol callable surface: merged with the live engine's stats.
        stats = oracle.stats()
        assert stats["deletions"] == 2
        assert stats["decremental_queries"] == 1
        assert stats["live"]["applied_mutations"] == 2

    def test_query_parity_with_the_serve_stack(self, small_random_graph):
        """Zero deletions: the shim answers exactly like a non-live stack."""
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            oracle = DecrementalEmulatorOracle(small_random_graph, eps=0.1)
        n = small_random_graph.num_vertices
        plain = serve_load(
            small_random_graph, ServeSpec.ultra_sparse(n, eps=0.1)
        )
        pairs = [(u, v) for u in range(0, n, 3) for v in range(n)]
        assert oracle.query_batch(pairs) == plain.query_batch(pairs)
        assert oracle.single_source(1) == plain.single_source(1)
        assert oracle.alpha == plain.alpha
        assert oracle.beta == plain.beta
        assert oracle.space_in_edges == plain.space_in_edges
        plain.close()
        oracle.close()
