"""Tests for the decremental (deletion-only) emulator oracle."""

from __future__ import annotations

import pytest

from repro.applications.dynamic import DecrementalEmulatorOracle
from repro.graphs import generators
from repro.graphs.shortest_paths import bfs_distances


class TestConstruction:
    def test_initial_build_does_not_count_as_rebuild(self, random_graph):
        oracle = DecrementalEmulatorOracle(random_graph, eps=0.1)
        assert oracle.stats.rebuilds == 0
        assert oracle.stats.deletions == 0

    def test_caller_graph_is_not_mutated(self, random_graph):
        edges_before = random_graph.num_edges
        oracle = DecrementalEmulatorOracle(random_graph, eps=0.1)
        oracle.delete_edge(*next(iter(sorted(random_graph.edges()))))
        assert random_graph.num_edges == edges_before

    def test_invalid_rebuild_threshold_rejected(self, path10):
        with pytest.raises(ValueError):
            DecrementalEmulatorOracle(path10, rebuild_every=0)

    def test_guarantee_exposed(self, random_graph):
        oracle = DecrementalEmulatorOracle(random_graph, eps=0.1, kappa=4.0)
        assert oracle.alpha >= 1.0
        assert oracle.beta > 0.0


class TestDeletions:
    def test_deleting_missing_edge_is_a_noop(self, path10):
        oracle = DecrementalEmulatorOracle(path10, eps=0.1)
        assert not oracle.delete_edge(0, 5)
        assert oracle.stats.deletions == 0

    def test_deleting_existing_edge_updates_graph(self, path10):
        oracle = DecrementalEmulatorOracle(path10, eps=0.1, rebuild_every=None)
        assert oracle.delete_edge(4, 5)
        assert not oracle.graph.has_edge(4, 5)
        assert oracle.stats.deletions == 1

    def test_deleting_supporting_edge_forces_rebuild(self, path10):
        # On a path every emulator edge of weight 1 is a graph edge, so the
        # deletion must force a rebuild to avoid underestimating distances.
        oracle = DecrementalEmulatorOracle(path10, eps=0.1, rebuild_every=None)
        supported = [
            (u, v) for u, v, w in oracle.emulator_result.emulator.edges() if w <= 1.0
        ]
        if not supported:
            pytest.skip("emulator has no weight-1 edge on this input")
        oracle.delete_edge(*supported[0])
        assert oracle.stats.forced_rebuilds == 1

    def test_periodic_rebuild_triggers(self, random_graph):
        oracle = DecrementalEmulatorOracle(random_graph, eps=0.1, rebuild_every=3)
        deleted = 0
        for u, v in sorted(random_graph.edges()):
            # Pick edges that are not in the emulator to avoid forced rebuilds.
            if not oracle.emulator_result.emulator.has_edge(u, v):
                oracle.delete_edge(u, v)
                deleted += 1
            if deleted >= 3:
                break
        assert oracle.stats.rebuilds >= 1

    def test_batch_deletion_reports_count(self, random_graph):
        oracle = DecrementalEmulatorOracle(random_graph, eps=0.1)
        edges = sorted(random_graph.edges())[:5]
        assert oracle.delete_edges(edges + [(0, 0 + 1)] * 0) == 5


class TestQueries:
    def test_query_identity_is_zero(self, random_graph):
        oracle = DecrementalEmulatorOracle(random_graph, eps=0.1)
        assert oracle.query(7, 7) == 0.0

    def test_query_counts_tracked(self, random_graph):
        oracle = DecrementalEmulatorOracle(random_graph, eps=0.1)
        oracle.query(0, 1)
        oracle.single_source(0)
        assert oracle.stats.queries == 2

    def test_answers_respect_guarantee_right_after_a_rebuild(self, small_random_graph):
        oracle = DecrementalEmulatorOracle(small_random_graph, eps=0.1, rebuild_every=1)
        # rebuild_every=1 forces a rebuild after every deletion, so every
        # answer is computed on an emulator of the *current* graph.
        removable = [
            (u, v)
            for u, v in sorted(small_random_graph.edges())
            if small_random_graph.degree(u) > 1 and small_random_graph.degree(v) > 1
        ][:5]
        oracle.delete_edges(removable)
        current = oracle.graph
        exact = bfs_distances(current, 0)
        for target, dg in exact.items():
            if target == 0:
                continue
            answer = oracle.query(0, target)
            assert answer >= dg - 1e-9
            assert answer <= oracle.alpha * dg + oracle.beta + 1e-9

    def test_disconnection_reported_as_infinity(self):
        graph = generators.path_graph(6)
        oracle = DecrementalEmulatorOracle(graph, eps=0.1, rebuild_every=1)
        oracle.delete_edge(2, 3)
        assert oracle.query(0, 5) == float("inf")

    def test_out_of_range_query_rejected(self, path10):
        oracle = DecrementalEmulatorOracle(path10, eps=0.1)
        with pytest.raises(ValueError):
            oracle.query(0, 10)
