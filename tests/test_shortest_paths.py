"""Unit tests for BFS / Dijkstra helpers on unweighted graphs."""

from __future__ import annotations

import pytest

from repro.graphs.graph import Graph
from repro.graphs.shortest_paths import (
    all_pairs_shortest_paths,
    bfs_distances,
    bfs_tree,
    bounded_bfs,
    bounded_dijkstra,
    diameter,
    dijkstra,
    eccentricity,
    multi_source_bfs,
)


class TestBfsDistances:
    def test_path(self, path10):
        dist = bfs_distances(path10, 0)
        assert dist[9] == 9
        assert dist[0] == 0

    def test_cycle(self, cycle12):
        dist = bfs_distances(cycle12, 0)
        assert dist[6] == 6
        assert dist[11] == 1

    def test_disconnected(self, disconnected_graph):
        dist = bfs_distances(disconnected_graph, 0)
        assert 7 not in dist
        assert dist[4] == 4

    def test_invalid_source(self):
        with pytest.raises(ValueError):
            bfs_distances(Graph(3), 7)

    def test_matches_networkx(self, random_graph):
        import networkx as nx

        nx_dist = nx.single_source_shortest_path_length(random_graph.to_networkx(), 0)
        assert bfs_distances(random_graph, 0) == dict(nx_dist)


class TestBoundedBfs:
    def test_radius_zero(self, path10):
        assert bounded_bfs(path10, 3, 0) == {3: 0}

    def test_radius_two(self, path10):
        dist = bounded_bfs(path10, 5, 2)
        assert set(dist) == {3, 4, 5, 6, 7}

    def test_float_radius(self, path10):
        dist = bounded_bfs(path10, 0, 2.5)
        assert set(dist) == {0, 1, 2}

    def test_unbounded_matches_full(self, grid6x6):
        assert bounded_bfs(grid6x6, 0, None) == bfs_distances(grid6x6, 0)

    def test_bounded_dijkstra_alias(self, grid6x6):
        assert bounded_dijkstra(grid6x6, 0, 3) == bounded_bfs(grid6x6, 0, 3)


class TestBfsTree:
    def test_parents_are_closer(self, grid6x6):
        parent = bfs_tree(grid6x6, 0)
        dist = bfs_distances(grid6x6, 0)
        for v, p in parent.items():
            if v != 0:
                assert dist[p] == dist[v] - 1

    def test_root_maps_to_itself(self, path10):
        assert bfs_tree(path10, 4)[4] == 4

    def test_radius_limits_tree(self, path10):
        parent = bfs_tree(path10, 0, radius=3)
        assert set(parent) == {0, 1, 2, 3}

    def test_invalid_source(self):
        with pytest.raises(ValueError):
            bfs_tree(Graph(2), 9)


class TestMultiSourceBfs:
    def test_single_source_matches(self, grid6x6):
        dist, origin = multi_source_bfs(grid6x6, [0])
        assert dist == bfs_distances(grid6x6, 0)
        assert set(origin.values()) == {0}

    def test_two_sources(self, path10):
        dist, origin = multi_source_bfs(path10, [0, 9])
        assert dist[4] == 4
        assert dist[5] == 4
        assert origin[2] == 0
        assert origin[7] == 9

    def test_tie_breaks_to_smaller_source(self, path10):
        _, origin = multi_source_bfs(path10, [0, 8])
        assert origin[4] == 0  # distance 4 from both 0 and 8

    def test_radius(self, path10):
        dist, origin = multi_source_bfs(path10, [0], radius=2)
        assert set(dist) == {0, 1, 2}
        assert set(origin) == {0, 1, 2}

    def test_invalid_source(self):
        with pytest.raises(ValueError):
            multi_source_bfs(Graph(2), [5])


class TestDijkstra:
    def test_unweighted_matches_bfs(self, random_graph):
        d1 = dijkstra(random_graph, 0)
        d2 = bfs_distances(random_graph, 0)
        assert d1 == {v: float(d) for v, d in d2.items()}

    def test_weight_overrides(self):
        g = Graph(3, [(0, 1), (1, 2), (0, 2)])
        dist = dijkstra(g, 0, weights={(0, 2): 10.0})
        assert dist[2] == 2.0

    def test_invalid_source(self):
        with pytest.raises(ValueError):
            dijkstra(Graph(2), 4)


class TestApspAndDiameter:
    def test_apsp_symmetry(self, small_random_graph):
        apsp = all_pairs_shortest_paths(small_random_graph)
        for u in range(small_random_graph.num_vertices):
            for v, d in apsp[u].items():
                assert apsp[v][u] == d

    def test_eccentricity_path(self, path10):
        assert eccentricity(path10, 0) == 9
        assert eccentricity(path10, 5) == 5

    def test_diameter_path(self, path10):
        assert diameter(path10) == 9

    def test_diameter_cycle(self, cycle12):
        assert diameter(cycle12) == 6

    def test_diameter_disconnected_uses_largest_component(self, disconnected_graph):
        assert diameter(disconnected_graph) == 4

    def test_diameter_empty(self):
        assert diameter(Graph(0)) == 0

    def test_diameter_matches_networkx(self, random_graph):
        import networkx as nx

        assert diameter(random_graph) == nx.diameter(random_graph.to_networkx())
