"""Unit tests for the edge-charging ledger."""

from __future__ import annotations

import pytest

from repro.core.charging import ChargeLedger, EdgeKind


class TestChargeRecording:
    def test_charge_normalizes_edge_order(self):
        ledger = ChargeLedger()
        record = ledger.charge(5, 2, 3.0, charged_to=2, phase=0, kind=EdgeKind.INTERCONNECTION)
        assert record.edge == (2, 5)
        assert record.weight == 3.0

    def test_counts(self):
        ledger = ChargeLedger()
        ledger.charge(0, 1, 1.0, charged_to=0, phase=0, kind=EdgeKind.INTERCONNECTION)
        ledger.charge(1, 2, 1.0, charged_to=2, phase=0, kind=EdgeKind.SUPERCLUSTERING)
        ledger.charge(2, 3, 1.0, charged_to=3, phase=1, kind=EdgeKind.SUPERCLUSTERING)
        assert ledger.num_charges == 3
        assert len(ledger) == 3
        assert ledger.interconnection_count() == 1
        assert ledger.superclustering_count() == 2

    def test_charges_by_vertex(self):
        ledger = ChargeLedger()
        ledger.charge(0, 1, 1.0, charged_to=0, phase=0, kind=EdgeKind.INTERCONNECTION)
        ledger.charge(0, 2, 1.0, charged_to=0, phase=0, kind=EdgeKind.INTERCONNECTION)
        by_vertex = ledger.charges_by_vertex()
        assert len(by_vertex[0]) == 2

    def test_charges_by_phase_and_edges_per_phase(self):
        ledger = ChargeLedger()
        ledger.charge(0, 1, 1.0, charged_to=0, phase=0, kind=EdgeKind.INTERCONNECTION)
        ledger.charge(1, 2, 1.0, charged_to=1, phase=2, kind=EdgeKind.INTERCONNECTION)
        assert set(ledger.charges_by_phase()) == {0, 2}
        assert ledger.edges_per_phase() == {0: 1, 2: 1}

    def test_repr(self):
        ledger = ChargeLedger()
        assert "total=0" in repr(ledger)


class TestInvariantChecks:
    def test_interconnection_budget_ok(self):
        ledger = ChargeLedger()
        for v in (1, 2):
            ledger.charge(0, v, 1.0, charged_to=0, phase=0, kind=EdgeKind.INTERCONNECTION)
        ledger.verify_interconnection_budget({0: 3.0})

    def test_interconnection_budget_violation(self):
        ledger = ChargeLedger()
        for v in (1, 2, 3):
            ledger.charge(0, v, 1.0, charged_to=0, phase=0, kind=EdgeKind.INTERCONNECTION)
        with pytest.raises(AssertionError):
            ledger.verify_interconnection_budget({0: 3.0})

    def test_superclustering_budget_ok(self):
        ledger = ChargeLedger()
        ledger.charge(0, 1, 1.0, charged_to=1, phase=0, kind=EdgeKind.SUPERCLUSTERING)
        ledger.charge(0, 2, 1.0, charged_to=2, phase=0, kind=EdgeKind.SUPERCLUSTERING)
        ledger.verify_superclustering_budget()

    def test_superclustering_budget_violation(self):
        ledger = ChargeLedger()
        ledger.charge(0, 1, 1.0, charged_to=1, phase=0, kind=EdgeKind.SUPERCLUSTERING)
        ledger.charge(2, 1, 1.0, charged_to=1, phase=0, kind=EdgeKind.SUPERCLUSTERING)
        with pytest.raises(AssertionError):
            ledger.verify_superclustering_budget()

    def test_single_charging_phase_ok(self):
        ledger = ChargeLedger()
        ledger.charge(0, 1, 1.0, charged_to=0, phase=1, kind=EdgeKind.INTERCONNECTION)
        ledger.charge(0, 2, 1.0, charged_to=0, phase=1, kind=EdgeKind.INTERCONNECTION)
        ledger.verify_single_charging_phase()

    def test_single_charging_phase_violation(self):
        ledger = ChargeLedger()
        ledger.charge(0, 1, 1.0, charged_to=0, phase=0, kind=EdgeKind.INTERCONNECTION)
        ledger.charge(0, 2, 1.0, charged_to=0, phase=1, kind=EdgeKind.INTERCONNECTION)
        with pytest.raises(AssertionError):
            ledger.verify_single_charging_phase()

    def test_superclustering_charges_do_not_affect_phase_check(self):
        ledger = ChargeLedger()
        ledger.charge(0, 1, 1.0, charged_to=0, phase=0, kind=EdgeKind.SUPERCLUSTERING)
        ledger.charge(0, 2, 1.0, charged_to=0, phase=1, kind=EdgeKind.INTERCONNECTION)
        ledger.verify_single_charging_phase()
