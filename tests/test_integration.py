"""Integration tests: end-to-end pipelines across modules and graph families.

Each test exercises the full path a downstream user follows: generate a
graph, build one of the objects, validate it, and compare against a
baseline or an alternative construction.
"""

from __future__ import annotations

import pytest

from repro import (
    build_emulator,
    build_emulator_congest,
    build_emulator_fast,
    build_near_additive_spanner,
    size_bound,
    ultra_sparse_kappa,
    verify_emulator,
    verify_spanner,
)
from repro.analysis.metrics import size_report, stretch_distribution
from repro.baselines import (
    build_elkin_neiman_emulator,
    build_elkin_peleg_emulator,
    build_thorup_zwick_emulator,
)
from repro.core.parameters import CentralizedSchedule
from repro.graphs import generators, io


FAMILIES = {
    "erdos-renyi": lambda: generators.connected_erdos_renyi(90, 0.06, seed=5),
    "grid": lambda: generators.grid_graph(9, 10),
    "hypercube": lambda: generators.hypercube_graph(6),
    "tree": lambda: generators.random_tree(90, seed=5),
    "ring-of-cliques": lambda: generators.ring_of_cliques(9, 9),
    "preferential": lambda: generators.preferential_attachment(90, 2, seed=5),
}


class TestAllConstructionsAcrossFamilies:
    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_centralized_pipeline(self, family):
        graph = FAMILIES[family]()
        result = build_emulator(graph, eps=0.1, kappa=4)
        assert result.within_size_bound()
        report = verify_emulator(graph, result.emulator, result.alpha, result.beta,
                                 sample_pairs=200)
        assert report.valid

    @pytest.mark.parametrize("family", ["erdos-renyi", "grid", "ring-of-cliques"])
    def test_fast_pipeline(self, family):
        graph = FAMILIES[family]()
        result = build_emulator_fast(graph, eps=0.01, kappa=4, rho=0.45)
        assert result.num_edges <= size_bound(graph.num_vertices, 4) + 1e-9
        report = verify_emulator(graph, result.emulator, result.schedule.alpha,
                                 result.schedule.beta, sample_pairs=200)
        assert report.valid

    @pytest.mark.parametrize("family", ["grid", "tree"])
    def test_congest_pipeline(self, family):
        graph = FAMILIES[family]()
        result = build_emulator_congest(graph, eps=0.01, kappa=4, rho=0.45)
        assert result.num_edges <= size_bound(graph.num_vertices, 4) + 1e-9
        assert result.both_endpoints_know_all_edges()

    @pytest.mark.parametrize("family", ["erdos-renyi", "hypercube"])
    def test_spanner_pipeline(self, family):
        graph = FAMILIES[family]()
        result = build_near_additive_spanner(graph, eps=0.01, kappa=4, rho=0.45)
        report = verify_spanner(graph, result.spanner, result.alpha, result.beta,
                                sample_pairs=200)
        assert report.valid


class TestUltraSparseEndToEnd:
    def test_ultra_sparse_emulator_is_near_linear(self):
        graph = generators.connected_erdos_renyi(300, 0.03, seed=8)
        kappa = ultra_sparse_kappa(300)
        result = build_emulator(graph, eps=0.1, kappa=kappa)
        report = size_report(result.emulator, kappa=kappa)
        assert report.within_bound
        # n + o(n): the allowance itself is tiny, and we respect it.
        assert result.num_edges - 300 <= report.bound - 300 + 1e-9
        assert report.bound - 300 < 0.25 * 300

    def test_ultra_sparse_beats_all_baselines(self):
        graph = generators.connected_erdos_renyi(200, 0.04, seed=9)
        kappa = ultra_sparse_kappa(200)
        schedule = CentralizedSchedule(n=200, eps=0.1, kappa=kappa)
        ours = build_emulator(graph, schedule=schedule).num_edges
        ep01 = build_elkin_peleg_emulator(graph, eps=0.1, kappa=kappa).num_edges
        tz06 = build_thorup_zwick_emulator(graph, kappa=kappa, seed=3).num_edges
        en17 = build_elkin_neiman_emulator(graph, eps=0.1, kappa=kappa, seed=3).num_edges
        assert ours <= min(ep01, tz06, en17)

    def test_stretch_distribution_reasonable_in_ultra_sparse_regime(self):
        graph = generators.grid_graph(12, 12)
        kappa = ultra_sparse_kappa(144)
        result = build_emulator(graph, eps=0.1, kappa=kappa)
        dist = stretch_distribution(graph, result.emulator, sample_pairs=300)
        # The observed additive error must stay below the schedule's beta.
        assert dist["max_additive"] <= result.beta


class TestPersistenceRoundTrip:
    def test_emulator_roundtrip_preserves_validity(self, tmp_path):
        graph = generators.connected_erdos_renyi(70, 0.08, seed=12)
        result = build_emulator(graph, eps=0.1, kappa=4)
        graph_path = tmp_path / "graph.txt"
        emulator_path = tmp_path / "emulator.txt"
        io.write_edge_list(graph, graph_path)
        io.write_weighted_edge_list(result.emulator, emulator_path)
        graph_back = io.read_edge_list(graph_path)
        emulator_back = io.read_weighted_edge_list(emulator_path)
        report = verify_emulator(graph_back, emulator_back, result.alpha, result.beta,
                                 sample_pairs=150)
        assert report.valid


class TestCrossConstructionConsistency:
    def test_all_three_emulator_builders_valid_on_same_graph(self):
        graph = generators.connected_erdos_renyi(64, 0.08, seed=15)
        central = build_emulator(graph, eps=0.1, kappa=4)
        fast = build_emulator_fast(graph, eps=0.01, kappa=4, rho=0.45)
        congest = build_emulator_congest(graph, eps=0.01, kappa=4, rho=0.45)
        for result, alpha, beta in (
            (central, central.alpha, central.beta),
            (fast, fast.schedule.alpha, fast.schedule.beta),
            (congest, congest.schedule.alpha, congest.schedule.beta),
        ):
            assert result.num_edges <= size_bound(64, 4) + 1e-9
            report = verify_emulator(graph, result.emulator, alpha, beta, sample_pairs=150)
            assert report.valid

    def test_fast_and_congest_agree_on_edge_count_order(self):
        graph = generators.grid_graph(8, 8)
        fast = build_emulator_fast(graph, eps=0.01, kappa=4, rho=0.45)
        congest = build_emulator_congest(graph, eps=0.01, kappa=4, rho=0.45)
        # Same schedule family; sizes should be in the same ballpark.
        assert abs(fast.num_edges - congest.num_edges) <= 0.5 * max(
            fast.num_edges, congest.num_edges
        )
