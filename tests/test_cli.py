"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.graphs import generators, io


@pytest.fixture(autouse=True)
def _isolate_cache_env(monkeypatch):
    """Keep the developer's real $REPRO_CACHE_DIR out of CLI tests."""
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_build_defaults(self):
        args = build_parser().parse_args(["build"])
        assert args.algorithm == "centralized"
        assert args.kappa == 4.0

    def test_experiments_only_choice_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiments", "--only", "E42"])


class TestBuildCommand:
    def test_build_generated_workload(self, capsys):
        code = main(["build", "--family", "grid", "--n", "49", "--kappa", "4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "emulator:" in out

    def test_build_from_file_with_output(self, tmp_path, capsys):
        g = generators.connected_erdos_renyi(30, 0.1, seed=2)
        graph_path = tmp_path / "g.txt"
        io.write_edge_list(g, graph_path)
        out_path = tmp_path / "emulator.txt"
        code = main(["build", "--input", str(graph_path), "--kappa", "4",
                     "--output", str(out_path)])
        assert code == 0
        emulator = io.read_weighted_edge_list(out_path)
        assert emulator.num_edges > 0

    def test_build_fast(self, capsys):
        code = main(["build", "--family", "grid", "--n", "36", "--algorithm", "fast"])
        assert code == 0
        assert "fast" in capsys.readouterr().out

    def test_build_congest(self, capsys):
        code = main(["build", "--family", "grid", "--n", "25", "--algorithm", "congest"])
        assert code == 0
        out = capsys.readouterr().out
        assert "rounds" in out

    def test_build_new_product_method_flags(self, capsys):
        code = main(["build", "--family", "grid", "--n", "25", "--product", "spanner",
                     "--method", "congest"])
        assert code == 0
        assert "spanner (CONGEST):" in capsys.readouterr().out

    def test_algorithm_fills_missing_half_of_product_method(self, capsys):
        # --algorithm congest must not be silently discarded when only
        # --product is pinned.
        code = main(["build", "--family", "grid", "--n", "25", "--algorithm", "congest",
                     "--product", "emulator"])
        assert code == 0
        assert "rounds" in capsys.readouterr().out

    def test_build_unsupported_combo_clean_error(self, capsys, monkeypatch):
        # Every vocabulary combo is registered now; deregister one so the
        # CLI's clean KeyError handling stays covered.
        from repro.api import registry as registry_module

        registry = dict(registry_module._REGISTRY)
        registry.pop(("spanner", "fast"))
        monkeypatch.setattr(registry_module, "_REGISTRY", registry)
        code = main(["build", "--family", "grid", "--n", "16", "--product", "spanner",
                     "--method", "fast"])
        assert code == 2
        err = capsys.readouterr().err
        assert "supported combinations" in err
        assert "Traceback" not in err

    def test_build_fast_spanner(self, capsys):
        code = main(["build", "--family", "grid", "--n", "16", "--product", "spanner",
                     "--method", "fast"])
        assert code == 0
        out = capsys.readouterr().out
        assert "spanner" in out and "subgraph of input: True" in out

    def test_build_invalid_kappa_clean_error(self, capsys):
        code = main(["build", "--family", "grid", "--n", "16", "--kappa", "1"])
        assert code == 2
        assert "kappa" in capsys.readouterr().err

    def test_sweep_spanner_fast_now_supported(self, capsys):
        # spanner/fast used to be the one registry hole; it is a real
        # builder now, so the full-surface sweep includes it.
        code = main(["sweep", "--family", "grid", "--n", "16", "--products", "spanner",
                     "--methods", "fast"])
        assert code == 0
        assert "spanner" in capsys.readouterr().out

    def test_sweep_command(self, capsys):
        code = main(["sweep", "--family", "grid", "--n", "16", "--products", "emulator",
                     "--methods", "centralized", "fast", "--verify-pairs", "20"])
        assert code == 0
        out = capsys.readouterr().out
        assert "emulator" in out and "fast" in out and "True" in out

    def test_sweep_parallel_workers(self, capsys):
        code = main(["sweep", "--family", "grid", "--n", "16", "--products", "emulator",
                     "--methods", "centralized", "fast", "--workers", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "total build time" in out
        assert "hit(s)" not in out  # no cache configured, no cache summary

    def test_sweep_cache_dir_second_run_hits(self, tmp_path, capsys):
        argv = ["sweep", "--family", "grid", "--n", "16", "--products", "emulator",
                "--methods", "centralized", "--cache-dir", str(tmp_path / "cache")]
        assert main(argv) == 0
        assert "0 hit(s), 1 miss(es)" in capsys.readouterr().out
        assert main(argv) == 0
        assert "1 hit(s), 0 miss(es)" in capsys.readouterr().out

    def test_sweep_no_cache_overrides_cache_dir(self, tmp_path, capsys):
        argv = ["sweep", "--family", "grid", "--n", "16", "--products", "emulator",
                "--methods", "centralized", "--cache-dir", str(tmp_path / "cache"),
                "--no-cache"]
        assert main(argv) == 0
        assert main(argv) == 0
        assert not (tmp_path / "cache").exists()
        out = capsys.readouterr().out
        assert "total build time" in out
        assert "hit(s)" not in out  # cache disabled, no cache summary

    def test_sweep_cache_dir_from_environment(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env-cache"))
        argv = ["sweep", "--family", "grid", "--n", "16", "--products", "emulator",
                "--methods", "centralized"]
        assert main(argv) == 0
        assert main(argv) == 0
        assert (tmp_path / "env-cache").is_dir()
        assert "1 hit(s), 0 miss(es)" in capsys.readouterr().out

    def test_experiments_workers_flag(self, capsys):
        code = main(["experiments", "--only", "E14", "--workers", "2"])
        assert code == 0
        assert "unified facade sweep" in capsys.readouterr().out

    def test_build_spanner_with_output(self, tmp_path, capsys):
        out_path = tmp_path / "spanner.txt"
        code = main(["build", "--family", "grid", "--n", "36", "--algorithm", "spanner",
                     "--output", str(out_path)])
        assert code == 0
        spanner = io.read_edge_list(out_path)
        assert spanner.num_edges > 0


class TestVerifyCommand:
    def test_verify_roundtrip(self, tmp_path, capsys):
        from repro.core.emulator import build_emulator

        g = generators.connected_erdos_renyi(30, 0.1, seed=4)
        result = build_emulator(g, eps=0.1, kappa=4)
        graph_path = tmp_path / "g.txt"
        emulator_path = tmp_path / "h.txt"
        io.write_edge_list(g, graph_path)
        io.write_weighted_edge_list(result.emulator, emulator_path)
        code = main(["verify", "--graph", str(graph_path), "--emulator", str(emulator_path),
                     "--alpha", str(result.alpha), "--beta", str(result.beta)])
        assert code == 0
        assert "valid: True" in capsys.readouterr().out

    def test_verify_detects_invalid(self, tmp_path, capsys):
        g = generators.path_graph(10)
        graph_path = tmp_path / "g.txt"
        emulator_path = tmp_path / "h.txt"
        io.write_edge_list(g, graph_path)
        from repro.graphs.weighted_graph import WeightedGraph

        io.write_weighted_edge_list(WeightedGraph(10), emulator_path)  # empty emulator
        code = main(["verify", "--graph", str(graph_path), "--emulator", str(emulator_path),
                     "--alpha", "1.0", "--beta", "1.0"])
        assert code == 1


class TestExperimentsCommand:
    def test_single_experiment(self, capsys):
        code = main(["experiments", "--only", "E2"])
        assert code == 0
        assert "E2" in capsys.readouterr().out
