"""Tests for Algorithm 1 — the centralized ultra-sparse emulator.

These tests check the paper's actual claims: the ``n^(1+1/kappa)`` size
bound (Lemma 2.4), the stretch guarantee (Corollary 2.13), the charging
invariants behind the size proof (Section 2.2.1), the radius bounds
(Lemma 2.5) and the partition structure (Lemmas 2.2, 2.8).
"""

from __future__ import annotations

import pytest

from repro.analysis.validation import verify_emulator, verify_no_shortening
from repro.core.charging import EdgeKind
from repro.core.emulator import UltraSparseEmulatorBuilder, build_emulator
from repro.core.parameters import CentralizedSchedule, size_bound, ultra_sparse_kappa
from repro.graphs import generators
from repro.graphs.graph import Graph


class TestSizeBound:
    @pytest.mark.parametrize("kappa", [2, 3, 4, 8, 16])
    def test_random_graph_within_bound(self, random_graph, kappa):
        result = build_emulator(random_graph, eps=0.1, kappa=kappa)
        assert result.num_edges <= size_bound(random_graph.num_vertices, kappa) + 1e-9
        assert result.within_size_bound()

    @pytest.mark.parametrize("kappa", [2, 4, 8])
    def test_grid_within_bound(self, grid6x6, kappa):
        result = build_emulator(grid6x6, eps=0.1, kappa=kappa)
        assert result.within_size_bound()

    def test_clique_within_bound(self, clique8):
        result = build_emulator(clique8, eps=0.1, kappa=2)
        assert result.within_size_bound()

    def test_star_within_bound(self, star20):
        result = build_emulator(star20, eps=0.1, kappa=4)
        assert result.within_size_bound()
        # The star collapses into one supercluster: n-1 superclustering edges.
        assert result.num_edges == star20.num_vertices - 1

    def test_hypercube_within_bound(self):
        g = generators.hypercube_graph(6)
        result = build_emulator(g, eps=0.1, kappa=4)
        assert result.within_size_bound()

    def test_ring_of_cliques_within_bound(self):
        g = generators.ring_of_cliques(8, 8)
        result = build_emulator(g, eps=0.1, kappa=3)
        assert result.within_size_bound()

    def test_disconnected_graph(self, disconnected_graph):
        result = build_emulator(disconnected_graph, eps=0.1, kappa=2)
        assert result.within_size_bound()

    def test_empty_graph(self):
        result = build_emulator(Graph(6), eps=0.1, kappa=2)
        assert result.num_edges == 0

    def test_single_vertex(self):
        result = build_emulator(Graph(1), eps=0.1, kappa=2)
        assert result.num_edges == 0

    def test_ultra_sparse_regime(self):
        g = generators.connected_erdos_renyi(200, 0.05, seed=3)
        kappa = ultra_sparse_kappa(200)
        result = build_emulator(g, eps=0.1, kappa=kappa)
        bound = size_bound(200, kappa)
        assert result.num_edges <= bound + 1e-9
        # n + o(n): the bound itself is barely above n.
        assert bound < 200 * 1.5

    def test_emulator_has_no_more_edges_than_charges(self, random_graph):
        result = build_emulator(random_graph, eps=0.1, kappa=4)
        assert result.num_edges <= result.ledger.num_charges


class TestStretch:
    @pytest.mark.parametrize("kappa", [2, 4, 8])
    def test_guarantee_random(self, random_graph, kappa):
        result = build_emulator(random_graph, eps=0.1, kappa=kappa)
        report = verify_emulator(random_graph, result.emulator, result.alpha, result.beta)
        assert report.valid, report.violations[:3]

    def test_guarantee_grid(self, grid6x6):
        result = build_emulator(grid6x6, eps=0.1, kappa=4)
        report = verify_emulator(grid6x6, result.emulator, result.alpha, result.beta)
        assert report.valid

    def test_guarantee_path(self, path10):
        result = build_emulator(path10, eps=0.1, kappa=2)
        report = verify_emulator(path10, result.emulator, result.alpha, result.beta)
        assert report.valid

    def test_never_shortens_distances(self, random_graph):
        result = build_emulator(random_graph, eps=0.1, kappa=4)
        assert verify_no_shortening(random_graph, result.emulator, sample_pairs=None)

    def test_phase0_neighbors_preserved_for_unpopular(self, path10):
        # On a path with kappa=2, deg_0 = sqrt(10) > 2, so every vertex is
        # unpopular in phase 0 and keeps all incident edges: H contains G.
        result = build_emulator(path10, eps=0.1, kappa=2)
        for u, v in path10.edges():
            assert result.emulator.has_edge(u, v)

    def test_edge_weights_equal_graph_distance_for_interconnection(self, random_graph):
        from repro.graphs.shortest_paths import bfs_distances

        result = build_emulator(random_graph, eps=0.1, kappa=4)
        interconnection = [c for c in result.ledger.charges
                           if c.kind is EdgeKind.INTERCONNECTION]
        # Check a handful of them exactly.
        for charge in interconnection[:25]:
            u, v = charge.edge
            assert charge.weight == bfs_distances(random_graph, u)[v]

    def test_weights_never_below_graph_distance(self, small_random_graph):
        from repro.graphs.shortest_paths import bfs_distances

        result = build_emulator(small_random_graph, eps=0.1, kappa=4)
        for u, v, w in result.emulator.edges():
            assert w >= bfs_distances(small_random_graph, u)[v] - 1e-9

    def test_tighter_eps_gives_no_worse_emulator(self, small_random_graph):
        loose = build_emulator(small_random_graph, eps=0.1, kappa=4)
        # Both must satisfy their own guarantee.
        tight_sched = CentralizedSchedule(n=40, eps=0.05, kappa=4)
        tight = build_emulator(small_random_graph, schedule=tight_sched)
        for result in (loose, tight):
            report = verify_emulator(small_random_graph, result.emulator,
                                     result.alpha, result.beta)
            assert report.valid


class TestChargingInvariants:
    def test_interconnection_budget(self, random_graph):
        result = build_emulator(random_graph, eps=0.1, kappa=4)
        degree_by_phase = {i: result.schedule.degree(i)
                           for i in range(result.schedule.num_phases)}
        result.ledger.verify_interconnection_budget(degree_by_phase)

    def test_superclustering_budget(self, random_graph):
        result = build_emulator(random_graph, eps=0.1, kappa=4)
        result.ledger.verify_superclustering_budget()

    def test_single_charging_phase(self, random_graph):
        result = build_emulator(random_graph, eps=0.1, kappa=4)
        result.ledger.verify_single_charging_phase()

    def test_all_invariants_on_many_graphs(self):
        graphs = [
            generators.connected_erdos_renyi(60, 0.08, seed=s) for s in range(3)
        ] + [generators.ring_of_cliques(6, 6), generators.grid_graph(7, 7)]
        for g in graphs:
            result = build_emulator(g, eps=0.1, kappa=4)
            degree_by_phase = {i: result.schedule.degree(i)
                               for i in range(result.schedule.num_phases)}
            result.ledger.verify_interconnection_budget(degree_by_phase)
            result.ledger.verify_superclustering_budget()
            result.ledger.verify_single_charging_phase()
            assert result.within_size_bound()

    def test_ledger_covers_every_emulator_edge(self, random_graph):
        result = build_emulator(random_graph, eps=0.1, kappa=4)
        charged_edges = {c.edge for c in result.ledger.charges}
        for u, v, _ in result.emulator.edges():
            assert (min(u, v), max(u, v)) in charged_edges


class TestStructure:
    def test_partitions_are_laminar(self, random_graph):
        # Every cluster of P_{i+1} is a union of clusters of P_i (Lemma 2.9).
        result = build_emulator(random_graph, eps=0.1, kappa=4)
        for i in range(len(result.partitions) - 1):
            prev, nxt = result.partitions[i], result.partitions[i + 1]
            for cluster in nxt.clusters():
                covered = set()
                for prev_cluster in prev.clusters():
                    if prev_cluster.members & cluster.members:
                        assert prev_cluster.members <= cluster.members
                        covered |= prev_cluster.members
                assert covered == cluster.members

    def test_partition_plus_unclustered_covers_vertices(self, random_graph):
        # Lemma 2.8: P_i together with U^(i-1) partitions V.
        result = build_emulator(random_graph, eps=0.1, kappa=4)
        n = random_graph.num_vertices
        for i, partition in enumerate(result.partitions):
            covered = set(partition.covered_vertices())
            for phase in range(i):
                for cluster in result.unclustered.get(phase, []):
                    covered |= cluster.members
            assert covered == set(range(n))

    def test_final_partition_empty(self, random_graph):
        result = build_emulator(random_graph, eps=0.1, kappa=4)
        assert result.partitions[-1].num_clusters == 0

    def test_cluster_radii_within_schedule_bound(self, random_graph):
        # Lemma 2.5: Rad(P_i) <= R_i.
        result = build_emulator(random_graph, eps=0.1, kappa=4)
        for i, partition in enumerate(result.partitions[:-1]):
            if partition.num_clusters:
                assert partition.max_radius() <= result.schedule.radius_bound(i) + 1e-9

    def test_radius_witness_matches_emulator_distance(self, small_random_graph):
        # The recorded radius must upper-bound the actual emulator distance
        # from the center to every member.
        result = build_emulator(small_random_graph, eps=0.1, kappa=4)
        for partition in result.partitions:
            for cluster in partition.clusters():
                dist = result.emulator.dijkstra(cluster.center)
                for member in cluster.members:
                    assert dist.get(member, float("inf")) <= cluster.radius + 1e-9

    def test_last_phase_never_superclusters(self, random_graph):
        result = build_emulator(random_graph, eps=0.1, kappa=4)
        assert result.phase_stats[-1].superclusters_formed == 0

    def test_phase_stats_consistency(self, random_graph):
        result = build_emulator(random_graph, eps=0.1, kappa=4)
        total = sum(s.edges_added for s in result.phase_stats)
        assert total == result.ledger.num_charges

    def test_superclusters_have_enough_subclusters(self, random_graph):
        # Lemma 2.1: a supercluster built in phase i contains >= deg_i + 1
        # clusters of P_i.
        result = build_emulator(random_graph, eps=0.1, kappa=4)
        for i in range(len(result.partitions) - 1):
            prev, nxt = result.partitions[i], result.partitions[i + 1]
            if nxt.num_clusters == 0:
                continue
            deg = result.schedule.degree(i)
            for cluster in nxt.clusters():
                count = sum(1 for pc in prev.clusters() if pc.members <= cluster.members)
                assert count >= deg + 1 - 1e-9


class TestBuilderApi:
    def test_schedule_mismatch_rejected(self, path10):
        schedule = CentralizedSchedule(n=99, eps=0.1, kappa=4)
        with pytest.raises(ValueError):
            UltraSparseEmulatorBuilder(path10, schedule=schedule)

    def test_explicit_schedule_used(self, path10):
        schedule = CentralizedSchedule(n=10, eps=0.1, kappa=8)
        result = build_emulator(path10, schedule=schedule)
        assert result.schedule is schedule

    def test_result_properties(self, path10):
        result = build_emulator(path10, eps=0.1, kappa=4)
        assert result.alpha == result.schedule.alpha
        assert result.beta == result.schedule.beta
        assert result.size_bound == pytest.approx(10 ** 1.25)

    def test_deterministic(self, random_graph):
        r1 = build_emulator(random_graph, eps=0.1, kappa=4)
        r2 = build_emulator(random_graph, eps=0.1, kappa=4)
        assert sorted(r1.emulator.edges()) == sorted(r2.emulator.edges())
