"""Tests for the Section 3.3 fast centralized (ruling-set based) construction."""

from __future__ import annotations

import pytest

from repro.analysis.validation import verify_emulator, verify_no_shortening
from repro.core.fast_centralized import FastCentralizedBuilder, build_emulator_fast
from repro.core.parameters import DistributedSchedule, size_bound
from repro.graphs import generators
from repro.graphs.graph import Graph


class TestSizeBound:
    @pytest.mark.parametrize("kappa,rho", [(4, 0.3), (4, 0.45), (8, 0.2), (8, 0.45)])
    def test_random_graph_within_bound(self, random_graph, kappa, rho):
        result = build_emulator_fast(random_graph, eps=0.01, kappa=kappa, rho=rho)
        assert result.num_edges <= size_bound(random_graph.num_vertices, kappa) + 1e-9

    def test_grid(self, grid6x6):
        result = build_emulator_fast(grid6x6, eps=0.01, kappa=4, rho=0.45)
        assert result.within_size_bound()

    def test_star(self, star20):
        result = build_emulator_fast(star20, eps=0.01, kappa=4, rho=0.45)
        assert result.within_size_bound()

    def test_ring_of_cliques(self):
        g = generators.ring_of_cliques(6, 8)
        result = build_emulator_fast(g, eps=0.01, kappa=4, rho=0.45)
        assert result.within_size_bound()

    def test_empty_graph(self):
        result = build_emulator_fast(Graph(4), eps=0.01, kappa=4, rho=0.45)
        assert result.num_edges == 0

    def test_disconnected(self, disconnected_graph):
        result = build_emulator_fast(disconnected_graph, eps=0.01, kappa=4, rho=0.45)
        assert result.within_size_bound()


class TestStretch:
    def test_guarantee_random(self, random_graph):
        result = build_emulator_fast(random_graph, eps=0.01, kappa=4, rho=0.45)
        report = verify_emulator(random_graph, result.emulator,
                                 result.schedule.alpha, result.schedule.beta)
        assert report.valid

    def test_guarantee_grid(self, grid6x6):
        result = build_emulator_fast(grid6x6, eps=0.01, kappa=4, rho=0.45)
        report = verify_emulator(grid6x6, result.emulator,
                                 result.schedule.alpha, result.schedule.beta)
        assert report.valid

    def test_never_shortens(self, random_graph):
        result = build_emulator_fast(random_graph, eps=0.01, kappa=4, rho=0.45)
        assert verify_no_shortening(random_graph, result.emulator, sample_pairs=None)

    def test_interconnection_weights_exact(self, small_random_graph):
        from repro.core.charging import EdgeKind
        from repro.graphs.shortest_paths import bfs_distances

        result = build_emulator_fast(small_random_graph, eps=0.01, kappa=4, rho=0.45)
        for charge in result.ledger.charges:
            if charge.kind is EdgeKind.INTERCONNECTION:
                u, v = charge.edge
                assert charge.weight == bfs_distances(small_random_graph, u)[v]


class TestStructureAndInvariants:
    def test_charging_invariants(self, random_graph):
        result = build_emulator_fast(random_graph, eps=0.01, kappa=4, rho=0.45)
        degree_by_phase = {i: result.schedule.degree(i)
                           for i in range(result.schedule.num_phases)}
        result.ledger.verify_interconnection_budget(degree_by_phase)
        result.ledger.verify_superclustering_budget()
        result.ledger.verify_single_charging_phase()

    def test_superclusters_large_enough(self, random_graph):
        # Lemma 3.5 consequence: each supercluster of P_{i+1} contains at
        # least deg_i + 1 clusters of P_i (no hub splitting centrally).
        result = build_emulator_fast(random_graph, eps=0.01, kappa=4, rho=0.45)
        for i in range(len(result.partitions) - 1):
            prev, nxt = result.partitions[i], result.partitions[i + 1]
            deg = result.schedule.degree(i)
            for cluster in nxt.clusters():
                count = sum(1 for pc in prev.clusters() if pc.members <= cluster.members)
                assert count >= deg + 1 - 1e-9

    def test_final_partition_empty(self, random_graph):
        result = build_emulator_fast(random_graph, eps=0.01, kappa=4, rho=0.45)
        assert result.partitions[-1].num_clusters == 0

    def test_radius_bounds(self, random_graph):
        result = build_emulator_fast(random_graph, eps=0.01, kappa=4, rho=0.45)
        for i, partition in enumerate(result.partitions[:-1]):
            if partition.num_clusters:
                assert partition.max_radius() <= result.schedule.radius_bound(i) + 1e-9

    def test_deterministic(self, random_graph):
        r1 = build_emulator_fast(random_graph, eps=0.01, kappa=4, rho=0.45)
        r2 = build_emulator_fast(random_graph, eps=0.01, kappa=4, rho=0.45)
        assert sorted(r1.emulator.edges()) == sorted(r2.emulator.edges())

    def test_schedule_mismatch_rejected(self, path10):
        schedule = DistributedSchedule(n=50, eps=0.01, kappa=4, rho=0.45)
        with pytest.raises(ValueError):
            FastCentralizedBuilder(path10, schedule=schedule)

    def test_matches_size_of_algorithm1_on_star(self, star20):
        from repro.core.emulator import build_emulator

        fast = build_emulator_fast(star20, eps=0.01, kappa=4, rho=0.45)
        slow = build_emulator(star20, eps=0.1, kappa=4)
        # Both collapse the star into a single supercluster.
        assert fast.num_edges == slow.num_edges == star20.num_vertices - 1
