"""Unit tests for the graph-family generators."""

from __future__ import annotations

import pytest

from repro.graphs import generators
from repro.graphs.shortest_paths import diameter


class TestDeterministicFamilies:
    def test_path(self):
        g = generators.path_graph(5)
        assert g.num_edges == 4
        assert diameter(g) == 4

    def test_path_single_vertex(self):
        g = generators.path_graph(1)
        assert g.num_edges == 0

    def test_cycle(self):
        g = generators.cycle_graph(7)
        assert g.num_edges == 7
        assert all(g.degree(v) == 2 for v in g.vertices())

    def test_cycle_too_small(self):
        with pytest.raises(ValueError):
            generators.cycle_graph(2)

    def test_star(self):
        g = generators.star_graph(9)
        assert g.degree(0) == 8
        assert g.num_edges == 8

    def test_star_requires_positive(self):
        with pytest.raises(ValueError):
            generators.star_graph(0)

    def test_complete(self):
        g = generators.complete_graph(6)
        assert g.num_edges == 15
        assert diameter(g) == 1

    def test_grid(self):
        g = generators.grid_graph(4, 5)
        assert g.num_vertices == 20
        assert g.num_edges == 4 * 4 + 3 * 5
        assert diameter(g) == 3 + 4

    def test_torus_regular(self):
        g = generators.torus_graph(4, 4)
        assert all(g.degree(v) == 4 for v in g.vertices())

    def test_torus_too_small(self):
        with pytest.raises(ValueError):
            generators.torus_graph(2, 4)

    def test_hypercube(self):
        g = generators.hypercube_graph(4)
        assert g.num_vertices == 16
        assert all(g.degree(v) == 4 for v in g.vertices())
        assert diameter(g) == 4

    def test_hypercube_dimension_zero(self):
        g = generators.hypercube_graph(0)
        assert g.num_vertices == 1

    def test_hypercube_negative(self):
        with pytest.raises(ValueError):
            generators.hypercube_graph(-1)

    def test_binary_tree(self):
        g = generators.binary_tree(3)
        assert g.num_vertices == 15
        assert g.num_edges == 14
        assert g.is_connected()

    def test_caterpillar(self):
        g = generators.caterpillar_graph(5, 2)
        assert g.num_vertices == 15
        assert g.num_edges == 14
        assert g.is_connected()

    def test_ring_of_cliques(self):
        g = generators.ring_of_cliques(4, 5)
        assert g.num_vertices == 20
        assert g.is_connected()
        # each clique contributes C(5,2)=10 edges, plus 4 ring edges
        assert g.num_edges == 4 * 10 + 4

    def test_ring_of_cliques_validation(self):
        with pytest.raises(ValueError):
            generators.ring_of_cliques(2, 4)
        with pytest.raises(ValueError):
            generators.ring_of_cliques(4, 0)

    def test_barbell(self):
        g = generators.barbell_graph(4, 3)
        assert g.num_vertices == 11
        assert g.is_connected()


class TestRandomFamilies:
    def test_erdos_renyi_deterministic_seed(self):
        g1 = generators.erdos_renyi(30, 0.2, seed=5)
        g2 = generators.erdos_renyi(30, 0.2, seed=5)
        assert g1 == g2

    def test_erdos_renyi_p_bounds(self):
        with pytest.raises(ValueError):
            generators.erdos_renyi(10, 1.5)

    def test_erdos_renyi_extremes(self):
        assert generators.erdos_renyi(10, 0.0).num_edges == 0
        assert generators.erdos_renyi(10, 1.0).num_edges == 45

    def test_connected_erdos_renyi_is_connected(self):
        for seed in range(3):
            g = generators.connected_erdos_renyi(50, 0.02, seed=seed)
            assert g.is_connected()

    def test_gnm_exact_edge_count(self):
        g = generators.gnm_random_graph(20, 35, seed=1)
        assert g.num_edges == 35

    def test_gnm_too_many_edges(self):
        with pytest.raises(ValueError):
            generators.gnm_random_graph(5, 11)

    def test_random_tree(self):
        g = generators.random_tree(25, seed=2)
        assert g.num_edges == 24
        assert g.is_connected()

    def test_random_tree_requires_positive(self):
        with pytest.raises(ValueError):
            generators.random_tree(0)

    def test_random_regular(self):
        g = generators.random_regular_graph(20, 4, seed=3)
        assert all(g.degree(v) == 4 for v in g.vertices())

    def test_random_regular_validation(self):
        with pytest.raises(ValueError):
            generators.random_regular_graph(5, 3)  # odd n * degree
        with pytest.raises(ValueError):
            generators.random_regular_graph(4, 5)  # degree >= n

    def test_preferential_attachment(self):
        g = generators.preferential_attachment(40, 2, seed=4)
        assert g.num_vertices == 40
        assert g.is_connected()

    def test_preferential_attachment_validation(self):
        with pytest.raises(ValueError):
            generators.preferential_attachment(10, 0)
