"""Unit tests for the weighted graph (emulator container)."""

from __future__ import annotations

import pytest

from repro.graphs.weighted_graph import WeightedGraph


class TestConstruction:
    def test_empty(self):
        g = WeightedGraph(0)
        assert g.num_vertices == 0
        assert g.num_edges == 0

    def test_with_edges(self):
        g = WeightedGraph(3, [(0, 1, 2.0), (1, 2, 3.0)])
        assert g.num_edges == 2
        assert g.weight(0, 1) == 2.0

    def test_negative_vertex_count(self):
        with pytest.raises(ValueError):
            WeightedGraph(-2)


class TestEdges:
    def test_add_edge(self):
        g = WeightedGraph(3)
        assert g.add_edge(0, 1, 5.0) is True
        assert g.weight(1, 0) == 5.0

    def test_duplicate_keeps_minimum(self):
        g = WeightedGraph(3)
        g.add_edge(0, 1, 5.0)
        assert g.add_edge(0, 1, 3.0) is False
        assert g.weight(0, 1) == 3.0
        assert g.num_edges == 1

    def test_duplicate_larger_weight_ignored(self):
        g = WeightedGraph(3)
        g.add_edge(0, 1, 2.0)
        g.add_edge(0, 1, 9.0)
        assert g.weight(0, 1) == 2.0

    def test_self_loop_rejected(self):
        g = WeightedGraph(3)
        with pytest.raises(ValueError):
            g.add_edge(2, 2, 1.0)

    def test_nonpositive_weight_rejected(self):
        g = WeightedGraph(3)
        with pytest.raises(ValueError):
            g.add_edge(0, 1, 0.0)
        with pytest.raises(ValueError):
            g.add_edge(0, 1, -1.0)

    def test_remove_edge(self):
        g = WeightedGraph(3, [(0, 1, 1.0)])
        assert g.remove_edge(0, 1) is True
        assert g.num_edges == 0
        assert g.remove_edge(0, 1) is False

    def test_weight_missing_edge(self):
        g = WeightedGraph(3)
        with pytest.raises(KeyError):
            g.weight(0, 1)

    def test_edges_iteration(self):
        g = WeightedGraph(4, [(2, 0, 1.5), (1, 3, 2.5)])
        edges = sorted(g.edges())
        assert edges == [(0, 2, 1.5), (1, 3, 2.5)]

    def test_total_weight(self):
        g = WeightedGraph(3, [(0, 1, 1.0), (1, 2, 2.5)])
        assert g.total_weight() == pytest.approx(3.5)

    def test_degree(self):
        g = WeightedGraph(4, [(0, 1, 1), (0, 2, 1), (0, 3, 1)])
        assert g.degree(0) == 3
        assert g.degree(1) == 1


class TestDijkstra:
    def test_path_distances(self):
        g = WeightedGraph(4, [(0, 1, 1.0), (1, 2, 2.0), (2, 3, 3.0)])
        dist = g.dijkstra(0)
        assert dist == {0: 0.0, 1: 1.0, 2: 3.0, 3: 6.0}

    def test_shortcut_preferred(self):
        g = WeightedGraph(3, [(0, 1, 10.0), (0, 2, 1.0), (2, 1, 1.0)])
        assert g.distance(0, 1) == 2.0

    def test_bounded_dijkstra(self):
        g = WeightedGraph(4, [(0, 1, 1.0), (1, 2, 5.0), (2, 3, 1.0)])
        dist = g.dijkstra(0, max_distance=2.0)
        assert 2 not in dist
        assert dist[1] == 1.0

    def test_distance_disconnected(self):
        g = WeightedGraph(3, [(0, 1, 1.0)])
        assert g.distance(0, 2) == float("inf")

    def test_distance_to_self(self):
        g = WeightedGraph(3)
        assert g.distance(1, 1) == 0.0

    def test_distances_from_alias(self):
        g = WeightedGraph(3, [(0, 1, 4.0)])
        assert g.distances_from(0) == g.dijkstra(0)

    def test_dijkstra_invalid_source(self):
        g = WeightedGraph(2)
        with pytest.raises(ValueError):
            g.dijkstra(5)


class TestMisc:
    def test_copy_independent(self):
        g = WeightedGraph(3, [(0, 1, 1.0)])
        h = g.copy()
        h.add_edge(1, 2, 2.0)
        assert g.num_edges == 1
        assert h.num_edges == 2

    def test_to_networkx(self):
        g = WeightedGraph(3, [(0, 1, 2.0)])
        nx_graph = g.to_networkx()
        assert nx_graph[0][1]["weight"] == 2.0

    def test_len_and_repr(self):
        g = WeightedGraph(5, [(0, 1, 1.0)])
        assert len(g) == 5
        assert "m=1" in repr(g)
