"""Tests for the statistics helpers used by the experiment drivers."""

from __future__ import annotations

import math

import pytest

from repro.analysis.statistics import (
    Summary,
    geometric_mean,
    loglog_slope,
    percentile,
    summarize,
)


class TestSummarize:
    def test_basic_summary(self):
        summary = summarize([1, 2, 3, 4])
        assert summary.count == 4
        assert summary.mean == pytest.approx(2.5)
        assert summary.minimum == 1
        assert summary.maximum == 4
        assert summary.median == pytest.approx(2.5)

    def test_single_element(self):
        summary = summarize([7.0])
        assert summary == Summary(
            count=1, mean=7.0, minimum=7.0, maximum=7.0, median=7.0, p95=7.0, std=0.0
        )

    def test_std_is_population_std(self):
        summary = summarize([2, 4, 4, 4, 5, 5, 7, 9])
        assert summary.std == pytest.approx(2.0)

    def test_empty_sample_rejected(self):
        with pytest.raises(ValueError):
            summarize([])


class TestPercentile:
    def test_median_of_odd_sample(self):
        assert percentile([3, 1, 2], 50) == 2

    def test_interpolation_between_order_statistics(self):
        assert percentile([0, 10], 25) == pytest.approx(2.5)

    def test_extremes(self):
        data = [5, 1, 9, 3]
        assert percentile(data, 0) == 1
        assert percentile(data, 100) == 9

    def test_out_of_range_q_rejected(self):
        with pytest.raises(ValueError):
            percentile([1, 2], 120)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50)


class TestGeometricMean:
    def test_known_value(self):
        assert geometric_mean([1, 4, 16]) == pytest.approx(4.0)

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            geometric_mean([1, 0, 2])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            geometric_mean([])


class TestLogLogSlope:
    def test_recovers_linear_scaling(self):
        xs = [10, 100, 1000]
        ys = [3 * x for x in xs]
        slope, intercept = loglog_slope(xs, ys)
        assert slope == pytest.approx(1.0)
        assert math.exp(intercept) == pytest.approx(3.0)

    def test_recovers_quadratic_scaling(self):
        xs = [2, 4, 8, 16]
        ys = [x ** 2 for x in xs]
        slope, _ = loglog_slope(xs, ys)
        assert slope == pytest.approx(2.0)

    def test_ignores_non_positive_points(self):
        slope, _ = loglog_slope([0, 2, 4, 8], [5, 4, 16, 64])
        assert slope == pytest.approx(2.0)

    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            loglog_slope([10], [10])

    def test_equal_x_rejected(self):
        with pytest.raises(ValueError):
            loglog_slope([5, 5], [1, 2])
