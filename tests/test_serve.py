"""Tests for the serving layer: registry, backends, engine, load()."""

from __future__ import annotations

import pytest

from repro.graphs import generators
from repro.graphs.shortest_paths import bfs_distances
from repro.serve import (
    DistanceOracle,
    QueryEngine,
    ServeSpec,
    available_oracles,
    get_oracle,
    is_oracle_registered,
    load,
    register_oracle,
)
from repro.serve.registry import _REGISTRY


class TestServeSpec:
    def test_defaults(self):
        spec = ServeSpec()
        assert spec.product == "emulator"
        assert spec.method == "centralized"
        assert spec.resolved_backend == "emulator"

    def test_backend_defaults_to_product(self):
        assert ServeSpec(product="hopset").resolved_backend == "hopset"
        assert ServeSpec(product="hopset", backend="exact").resolved_backend == "exact"

    def test_build_spec_projection(self):
        spec = ServeSpec(product="spanner", method="fast", eps=0.01, kappa=3.0, seed=5)
        build_spec = spec.build_spec()
        assert build_spec.product == "spanner"
        assert build_spec.method == "fast"
        assert build_spec.eps == 0.01
        assert build_spec.kappa == 3.0
        assert build_spec.seed == 5

    def test_replace(self):
        spec = ServeSpec().replace(backend="exact", cache_sources=7)
        assert spec.resolved_backend == "exact"
        assert spec.cache_sources == 7

    def test_validation(self):
        with pytest.raises(ValueError):
            ServeSpec(product="nonsense")
        with pytest.raises(ValueError):
            ServeSpec(method="nonsense")
        with pytest.raises(ValueError):
            ServeSpec(cache_sources=0)
        with pytest.raises(ValueError):
            ServeSpec(workers=0)

    def test_describe_names_backend_and_build(self):
        text = ServeSpec(product="hopset", eps=0.1).describe()
        assert "hopset" in text
        assert "eps=0.1" in text

    def test_ultra_sparse_recipe(self):
        from repro.core.parameters import ultra_sparse_kappa

        spec = ServeSpec.ultra_sparse(100)
        assert spec.product == "emulator"
        assert spec.method == "centralized"
        assert spec.kappa == ultra_sparse_kappa(100)
        # Explicit kappa wins; other fields pass through.
        spec = ServeSpec.ultra_sparse(100, kappa=4.0, seed=7, cache_sources=3)
        assert spec.kappa == 4.0
        assert spec.seed == 7
        assert spec.cache_sources == 3
        # The n guard keeps trivial graphs valid.
        assert ServeSpec.ultra_sparse(1).kappa == ultra_sparse_kappa(2)

    def test_effective_product_follows_the_backend(self):
        # Product-named backends build their own product, overriding
        # ``product``; the exact backend never builds.
        assert ServeSpec(product="emulator").effective_product == "emulator"
        assert ServeSpec(product="emulator", backend="spanner").effective_product == "spanner"
        assert ServeSpec(backend="exact").effective_product is None


class TestRegistry:
    def test_stock_backends_registered(self):
        assert available_oracles() == ["emulator", "exact", "hopset", "remote", "spanner"]
        for name in available_oracles():
            assert is_oracle_registered(name)

    def test_buildable_excludes_the_remote_proxy(self):
        from repro.serve import buildable_oracles

        assert buildable_oracles() == ["emulator", "exact", "hopset", "spanner"]

    def test_unknown_backend_lists_alternatives(self):
        with pytest.raises(KeyError, match="emulator"):
            get_oracle("nonsense")

    def test_custom_backend_plugs_into_load(self, path10):
        class ConstantOracle:
            alpha = 1.0
            beta = 0.0
            num_vertices = 10
            space_in_edges = 0

            def query(self, u, v):
                return 0.0

            def query_batch(self, pairs):
                return [0.0 for _ in pairs]

            def single_source(self, source):
                return {v: 0.0 for v in range(10)}

            def stats(self):
                return {"backend": "constant"}

        @register_oracle("constant-test", description="test double")
        def _make(graph, spec):
            return ConstantOracle()

        try:
            engine = load(path10, ServeSpec(backend="constant-test"))
            assert engine.query(0, 9) == 0.0
        finally:
            _REGISTRY.pop("constant-test", None)


class TestBackendGuarantees:
    """Every registered backend answers within its advertised stretch."""

    @pytest.fixture(scope="class", params=["emulator", "spanner", "hopset", "exact"])
    def served(self, request):
        graph = generators.connected_erdos_renyi(60, 0.08, seed=11)
        engine = load(graph, ServeSpec(backend=request.param, seed=0))
        return graph, engine

    def test_satisfies_protocol(self, served):
        _, engine = served
        assert isinstance(engine, DistanceOracle)
        assert isinstance(engine.oracle, DistanceOracle)

    def test_answers_within_stretch_vs_exact_bfs(self, served):
        graph, engine = served
        alpha, beta = engine.alpha, engine.beta
        for source in (0, 7, 31):
            exact = bfs_distances(graph, source)
            for target in range(0, graph.num_vertices, 3):
                answer = engine.query(source, target)
                dg = exact.get(target)
                if dg is None:
                    assert answer == float("inf")
                    continue
                assert answer >= dg - 1e-9
                assert answer <= alpha * dg + beta + 1e-9

    def test_self_distance_zero(self, served):
        _, engine = served
        assert engine.query(5, 5) == 0.0

    def test_single_source_covers_component(self, served):
        graph, engine = served
        dist = engine.single_source(0)
        assert dist[0] == 0.0
        assert len(dist) == len(bfs_distances(graph, 0))

    def test_stats_carry_identity_and_space(self, served):
        _, engine = served
        stats = engine.stats()
        assert stats["oracle"]["backend"] in available_oracles()
        assert stats["oracle"]["space_in_edges"] == engine.space_in_edges
        assert stats["cache_sources_limit"] == engine.cache_sources

    def test_out_of_range_vertex_rejected(self, served):
        _, engine = served
        with pytest.raises(ValueError):
            engine.query(0, 9999)
        with pytest.raises(ValueError):
            engine.single_source(-1)


class TestBackendSpecifics:
    def test_exact_backend_is_stretch_free(self, grid6x6):
        engine = load(grid6x6, ServeSpec(backend="exact"))
        assert engine.alpha == 1.0
        assert engine.beta == 0.0
        exact = bfs_distances(grid6x6, 0)
        for target, dg in exact.items():
            assert engine.query(0, target) == float(dg)

    def test_spanner_backend_is_subgraph_sized(self, random_graph):
        engine = load(random_graph, ServeSpec(backend="spanner"))
        assert engine.space_in_edges <= random_graph.num_edges

    def test_hopset_backend_reports_hopbound(self, small_random_graph):
        engine = load(small_random_graph, ServeSpec(backend="hopset"))
        assert engine.oracle.hopbound >= 1
        assert engine.stats()["oracle"]["hopbound"] == engine.oracle.hopbound

    def test_hopset_hopbound_override(self, path10):
        engine = load(
            path10, ServeSpec(backend="hopset", options={"hopbound": 64})
        )
        assert engine.oracle.hopbound == 64
        with pytest.raises(ValueError):
            load(path10, ServeSpec(backend="hopset", options={"hopbound": 0}))

    def test_disconnected_pairs_answer_inf(self, disconnected_graph):
        from repro.serve import buildable_oracles

        for backend in buildable_oracles():
            engine = load(disconnected_graph, ServeSpec(backend=backend))
            assert engine.query(0, 9) == float("inf")


class TestQueryEngine:
    def test_lru_eviction_and_counters(self, path10):
        engine = load(path10, ServeSpec(backend="exact", cache_sources=2))
        for source in range(5):
            engine.single_source(source)
        stats = engine.stats()
        assert stats["cached_sources"] == 2
        assert stats["cache_evictions"] == 3
        assert stats["cache_misses"] == 5
        # Evicted sources still answer correctly (recomputed on demand).
        assert engine.query(0, 9) == 9.0

    def test_lru_reads_refresh_recency(self, path10):
        engine = load(path10, ServeSpec(backend="exact", cache_sources=2))
        engine.single_source(0)
        engine.single_source(1)
        engine.query(0, 5)  # refresh 0: next insert must evict 1, not 0
        engine.single_source(2)
        assert set(engine._cache) == {0, 2}

    def test_query_batch_matches_single_queries(self, random_graph):
        engine = load(random_graph, ServeSpec())
        pairs = [(0, 10), (3, 40), (7, 7), (0, 55)]
        batch = engine.query_batch(pairs)
        fresh = load(random_graph, ServeSpec())
        assert batch == [fresh.query(*pair) for pair in pairs]

    def test_query_batch_groups_by_source(self, random_graph):
        engine = load(random_graph, ServeSpec())
        pairs = [(0, v) for v in range(1, 40)]
        engine.query_batch(pairs)
        # One source computed once, not 39 times.
        assert engine.cache_misses == 1

    def test_parallel_batch_equals_serial(self):
        graph = generators.connected_erdos_renyi(70, 0.06, seed=5)
        pairs = [(i % 25, (i * 7 + 1) % 70) for i in range(120)]
        serial = load(graph, ServeSpec()).query_batch(pairs)
        parallel_engine = load(graph, ServeSpec())
        parallel = parallel_engine.query_batch(pairs, workers=2)
        assert parallel == serial

    def test_unpicklable_oracle_falls_back_serially(self, path10):
        backend = load(path10, ServeSpec(backend="exact")).oracle
        backend._poison = lambda: None  # lambdas do not pickle
        engine = QueryEngine(backend, cache_sources=16)
        pairs = [(u, 9) for u in range(8)]
        assert engine.query_batch(pairs, workers=2) == [float(9 - u) for u in range(8)]
        assert engine.parallel_batches == 0

    def test_default_workers_come_from_spec(self, path10):
        engine = load(path10, ServeSpec(workers=2))
        assert engine._workers == 2

    def test_batch_larger_than_memo_computes_each_source_once(self, path10):
        backend = load(path10, ServeSpec(backend="exact")).oracle
        calls = []
        original = backend.single_source

        def counting(source):
            calls.append(source)
            return original(source)

        backend.single_source = counting
        engine = QueryEngine(backend, cache_sources=2)
        pairs = [(u, 9) for u in range(8)] * 2  # 8 distinct sources, memo holds 2
        answers = engine.query_batch(pairs)
        assert answers == [float(9 - u) for u in range(8)] * 2
        assert len(calls) == 8  # once per source, not once per pair
        assert engine.cache_misses == 8
        assert engine.cache_hits == 8  # the non-self repeats

    def test_mid_batch_eviction_recompute_counts_as_miss(self, path10):
        backend = load(path10, ServeSpec(backend="exact")).oracle
        calls = []
        original = backend.single_source

        def counting(source):
            calls.append(source)
            return original(source)

        backend.single_source = counting
        engine = QueryEngine(backend, cache_sources=1)
        engine.single_source(0)  # memoize source 0
        # Filling source 1 evicts source 0 mid-batch, so source 0's pair
        # triggers a recompute — a real backend invocation that must show
        # up in the miss counter and re-enter the memo.
        answers = engine.query_batch([(1, 9), (0, 9)])
        assert answers == [8.0, 9.0]
        assert len(calls) == 3  # warm 0, fill 1, recompute 0
        assert engine.cache_misses == len(calls)
        assert 0 in engine._cache  # the recompute re-memoized its source

    def test_parallel_pool_is_reused_across_batches(self):
        graph = generators.connected_erdos_renyi(40, 0.1, seed=8)
        engine = load(graph, ServeSpec(cache_sources=4))
        try:
            engine.query_batch([(u, 30) for u in range(10)], workers=2)
            pool = engine._pool
            assert pool is not None
            engine.query_batch([(u, 30) for u in range(10, 20)], workers=2)
            assert engine._pool is pool
            assert engine.parallel_batches == 2
        finally:
            engine.close()
        assert engine._pool is None


class TestEngineAdmissionInterface:
    """lookup/admit/record_queries/prewarm/stats_delta (the daemon's surface)."""

    def test_lookup_counts_a_hit_only_when_cached(self, path10):
        engine = load(path10, ServeSpec(backend="exact"))
        assert engine.lookup(0) is None
        assert engine.cache_hits == 0 and engine.cache_misses == 0
        dist = engine.oracle.single_source(0)
        engine.admit(0, dist)
        assert engine.cache_misses == 1
        assert engine.lookup(0) == dist
        assert engine.cache_hits == 1

    def test_lookup_refreshes_lru_recency(self, path10):
        engine = load(path10, ServeSpec(backend="exact", cache_sources=2))
        engine.admit(0, engine.oracle.single_source(0))
        engine.admit(1, engine.oracle.single_source(1))
        engine.lookup(0)  # refresh: the next admit must evict 1, not 0
        engine.admit(2, engine.oracle.single_source(2))
        assert engine.lookup(0) is not None
        assert engine.lookup(1) is None

    def test_record_queries_validates(self, path10):
        engine = load(path10, ServeSpec(backend="exact"))
        engine.record_queries(3)
        assert engine.queries == 3
        with pytest.raises(ValueError):
            engine.record_queries(-1)

    def test_prewarm_respects_budget_and_skips_cached(self, path10):
        engine = load(path10, ServeSpec(backend="exact", cache_sources=4))
        engine.single_source(0)  # already cached -> skipped by prewarm
        warmed = engine.prewarm([0, 1, 2, 3, 4, 5], limit=3)
        assert warmed == 3  # budget of 3 fresh sources (0 skipped)
        assert engine.prewarmed_sources == 3
        # The memo bound caps the budget even without an explicit limit.
        engine2 = load(path10, ServeSpec(backend="exact", cache_sources=2))
        assert engine2.prewarm(range(10)) == 2
        with pytest.raises(ValueError):
            engine.prewarm([0], limit=-1)
        with pytest.raises(ValueError):
            engine.prewarm([99])  # out of range propagates

    def test_stats_delta_subtracts_only_counters(self, path10):
        engine = load(path10, ServeSpec(backend="exact", cache_sources=2))
        engine.query(0, 5)
        before = engine.stats()
        engine.query(0, 6)  # hit
        engine.query(1, 5)  # miss
        delta = engine.stats_delta(before)
        assert delta["queries"] == 2
        assert delta["cache_hits"] == 1
        assert delta["cache_misses"] == 1
        # Non-counter fields stay absolute.
        assert delta["cache_sources_limit"] == 2
        assert delta["cached_sources"] == 2
