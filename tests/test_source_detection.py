"""Tests for the Lenzen–Peleg (S, d, k)-source detection routine."""

from __future__ import annotations

import pytest

from repro.congest.bellman_ford import detect_popular_clusters
from repro.congest.network import SynchronousNetwork
from repro.congest.source_detection import (
    detect_popular_via_source_detection,
    source_detection,
)
from repro.graphs.shortest_paths import bfs_distances


class TestSourceDetection:
    def test_every_vertex_detects_its_closest_sources(self, grid6x6):
        sources = [0, 35]
        result = source_detection(grid6x6, sources, distance_bound=12, k=2)
        for v in grid6x6.vertices():
            exact = sorted(
                (bfs_distances(grid6x6, s)[v], s) for s in sources
            )
            assert result.detected[v] == exact[:2]

    def test_k_limits_the_number_of_detected_sources(self, grid6x6):
        sources = [0, 5, 30, 35]
        result = source_detection(grid6x6, sources, distance_bound=12, k=2)
        assert all(len(entries) <= 2 for entries in result.detected.values())

    def test_distance_bound_respected(self, path10):
        result = source_detection(path10, [0], distance_bound=3, k=1)
        assert result.detected[3] == [(3, 0)]
        assert result.detected[4] == []

    def test_detected_distances_are_exact(self, random_graph):
        sources = [0, 10, 20]
        result = source_detection(random_graph, sources, distance_bound=20, k=3)
        for v, entries in result.detected.items():
            for dist, src in entries:
                assert dist == bfs_distances(random_graph, src)[v]

    def test_rounds_match_lenzen_peleg_bound(self, random_graph):
        sources = [0, 10, 20, 30]
        result = source_detection(random_graph, sources, distance_bound=10, k=2)
        assert result.rounds <= 10 + 2

    def test_rounds_charged_to_network(self, path10):
        net = SynchronousNetwork(path10)
        result = source_detection(path10, [0, 9], distance_bound=9, k=2, net=net)
        assert net.rounds_elapsed == result.rounds
        assert net.total_messages == result.messages

    def test_bad_source_rejected(self, path10):
        with pytest.raises(ValueError):
            source_detection(path10, [42], distance_bound=2, k=1)

    def test_bad_k_rejected(self, path10):
        with pytest.raises(ValueError):
            source_detection(path10, [0], distance_bound=2, k=0)

    def test_ties_broken_toward_smaller_source_id(self, path10):
        # Vertex 5 is equidistant from sources 4 and 6.
        result = source_detection(path10, [4, 6], distance_bound=5, k=1)
        assert result.detected[5] == [(1, 4)]


class TestPopularityViaSourceDetection:
    @pytest.mark.parametrize("fixture_name", ["grid6x6", "random_graph", "star20"])
    def test_agrees_with_algorithm2(self, request, fixture_name):
        graph = request.getfixturevalue(fixture_name)
        centers = list(graph.vertices())
        degree_threshold, distance_threshold = 3.0, 2.0
        algorithm2 = detect_popular_clusters(graph, centers, degree_threshold, distance_threshold)
        popular, _ = detect_popular_via_source_detection(
            graph, centers, degree_threshold, distance_threshold
        )
        assert popular == algorithm2.popular

    def test_star_center_is_popular_leaves_are_too_at_radius_two(self, star20):
        # Within distance 2 every leaf sees every other leaf through the hub.
        popular, _ = detect_popular_via_source_detection(
            star20, list(star20.vertices()), degree_threshold=5.0, distance_threshold=2.0
        )
        assert popular == set(star20.vertices())

    def test_path_has_no_popular_centers_at_high_threshold(self, path10):
        popular, _ = detect_popular_via_source_detection(
            path10, list(path10.vertices()), degree_threshold=5.0, distance_threshold=1.0
        )
        assert popular == set()

    def test_uses_fewer_rounds_than_algorithm2_when_delta_is_large(self, random_graph):
        centers = list(random_graph.vertices())
        degree_threshold, distance_threshold = 6.0, 15.0
        algorithm2 = detect_popular_clusters(
            random_graph, centers, degree_threshold, distance_threshold
        )
        _, detection = detect_popular_via_source_detection(
            random_graph, centers, degree_threshold, distance_threshold
        )
        assert detection.rounds < algorithm2.rounds
