"""Unit tests for clusters and partial partitions."""

from __future__ import annotations

import pytest

from repro.core.clusters import Cluster, Partition


class TestCluster:
    def test_singleton(self):
        c = Cluster.singleton(7)
        assert c.center == 7
        assert c.members == {7}
        assert c.radius == 0.0
        assert c.phase_created == 0
        assert c.size == 1

    def test_center_must_be_member(self):
        with pytest.raises(ValueError):
            Cluster(center=1, members={2, 3})

    def test_default_members(self):
        c = Cluster(center=4)
        assert c.members == {4}

    def test_contains_iter_len(self):
        c = Cluster(center=1, members={1, 2, 3})
        assert 2 in c
        assert 9 not in c
        assert sorted(c) == [1, 2, 3]
        assert len(c) == 3

    def test_frozen_members(self):
        c = Cluster(center=0, members={0, 1})
        frozen = c.frozen_members()
        assert frozen == frozenset({0, 1})

    def test_merged_with(self):
        a = Cluster(center=0, members={0, 1}, radius=1.0)
        b = Cluster(center=2, members={2, 3}, radius=2.0)
        merged = a.merged_with([b], radius=5.0, phase_created=1)
        assert merged.center == 0
        assert merged.members == {0, 1, 2, 3}
        assert merged.radius == 5.0
        assert merged.phase_created == 1

    def test_merged_with_default_radius(self):
        a = Cluster(center=0, members={0}, radius=1.0)
        b = Cluster(center=1, members={1}, radius=3.0)
        assert a.merged_with([b]).radius == 3.0

    def test_merged_with_invalid_center(self):
        a = Cluster(center=0, members={0})
        b = Cluster(center=1, members={1})
        with pytest.raises(ValueError):
            a.merged_with([b], new_center=9)

    def test_repr(self):
        assert "center=0" in repr(Cluster.singleton(0))


class TestPartition:
    def test_singletons(self):
        p = Partition.singletons(5)
        assert p.num_clusters == 5
        assert p.num_covered == 5
        assert p.is_partition_of(5)

    def test_add_and_lookup(self):
        p = Partition()
        p.add(Cluster(center=0, members={0, 1}))
        assert p.has_center(0)
        assert p.covers(1)
        assert not p.covers(2)
        assert p.cluster_of_vertex(1).center == 0
        assert p.cluster_of_vertex(5) is None
        assert p.cluster_of_center(0).members == {0, 1}

    def test_add_duplicate_center_rejected(self):
        p = Partition([Cluster.singleton(0)])
        with pytest.raises(ValueError):
            p.add(Cluster(center=0, members={0, 1}))

    def test_add_overlapping_cluster_rejected(self):
        p = Partition([Cluster(center=0, members={0, 1})])
        with pytest.raises(ValueError):
            p.add(Cluster(center=2, members={1, 2}))

    def test_remove(self):
        p = Partition.singletons(3)
        removed = p.remove(1)
        assert removed.center == 1
        assert not p.covers(1)
        assert p.num_clusters == 2

    def test_centers_sorted(self):
        p = Partition([Cluster.singleton(3), Cluster.singleton(1), Cluster.singleton(2)])
        assert p.centers() == [1, 2, 3]

    def test_clusters_order(self):
        p = Partition([Cluster.singleton(5), Cluster.singleton(2)])
        assert [c.center for c in p.clusters()] == [2, 5]

    def test_covered_vertices(self):
        p = Partition([Cluster(center=0, members={0, 3})])
        assert p.covered_vertices() == {0, 3}

    def test_max_radius(self):
        p = Partition([Cluster(center=0, members={0}, radius=2.0),
                       Cluster(center=1, members={1}, radius=5.0)])
        assert p.max_radius() == 5.0
        assert Partition().max_radius() == 0.0

    def test_is_partition_of(self):
        p = Partition([Cluster(center=0, members={0, 1}), Cluster.singleton(2)])
        assert p.is_partition_of(3)
        assert not p.is_partition_of(4)

    def test_validate_disjoint_passes(self):
        Partition.singletons(4).validate_disjoint()

    def test_len_iter_repr(self):
        p = Partition.singletons(3)
        assert len(p) == 3
        assert [c.center for c in p] == [0, 1, 2]
        assert "clusters=3" in repr(p)
