"""Tests for the E9-E15 experiment drivers (tables render, invariants hold)."""

from __future__ import annotations

import pytest

from repro.experiments.applications_experiment import (
    format_applications_table,
    run_applications_experiment,
)
from repro.experiments.beta_tradeoff_experiment import (
    format_beta_tradeoff_figure,
    format_beta_tradeoff_table,
    run_beta_tradeoff_experiment,
)
from repro.experiments.hopset_experiment import format_hopset_table, run_hopset_experiment
from repro.experiments.rho_sweep_experiment import (
    format_rho_sweep_figure,
    format_rho_sweep_table,
    run_rho_sweep_experiment,
)
from repro.experiments.runner import available_experiments
from repro.experiments.source_detection_experiment import (
    format_source_detection_table,
    run_source_detection_experiment,
)
from repro.experiments.workloads import workload_by_name


@pytest.fixture(scope="module")
def tiny_workloads():
    """A small workload set shared by the experiment-driver tests."""
    return [workload_by_name(name, 48, seed=0) for name in ("erdos-renyi", "grid", "random-tree")]


class TestRunnerRegistration:
    def test_all_experiment_ids_registered(self):
        ids = available_experiments()
        for eid in ("E8", "E9", "E10", "E11", "E12", "E13", "E14", "E15"):
            assert eid in ids


class TestServeExperiment:
    def test_rows_cover_every_backend_and_table_renders(self):
        from repro.experiments.serve_experiment import (
            format_serve_table,
            run_serve_experiment,
        )
        from repro.serve import buildable_oracles

        workload = workload_by_name("erdos-renyi", 48, seed=0)
        served, rows = run_serve_experiment(
            workload=workload, num_queries=120, stretch_sample=40
        )
        assert [row.backend for row in rows] == buildable_oracles()
        assert all(row.ok for row in rows)
        exact = next(row for row in rows if row.backend == "exact")
        assert exact.max_stretch == 1.0
        table = format_serve_table(served, rows)
        assert "E15" in table
        assert "q/s" in table


class TestBetaTradeoff:
    def test_rows_cover_the_full_sweep(self, tiny_workloads):
        rows = run_beta_tradeoff_experiment(
            workload=tiny_workloads[0], eps_values=(0.1,), kappas=(2.0, 4.0)
        )
        assert len(rows) == 2
        assert all(r.valid for r in rows)

    def test_beta_bound_monotone_in_kappa(self, tiny_workloads):
        rows = run_beta_tradeoff_experiment(
            workload=tiny_workloads[0], eps_values=(0.1,), kappas=(2.0, 4.0, 8.0)
        )
        betas = [r.beta_bound for r in rows]
        assert betas == sorted(betas)

    def test_table_and_figure_render(self, tiny_workloads):
        rows = run_beta_tradeoff_experiment(
            workload=tiny_workloads[0], eps_values=(0.1,), kappas=(2.0, 4.0)
        )
        assert "E9" in format_beta_tradeoff_table(rows)
        assert "legend" in format_beta_tradeoff_figure(rows)


class TestHopsetExperiment:
    def test_rows_and_invariants(self, tiny_workloads):
        rows = run_hopset_experiment(tiny_workloads, sample_pairs=100)
        assert len(rows) == len(tiny_workloads)
        for row in rows:
            assert row.hopbound_exact >= 1
            assert row.hopbound_exact <= max(1, row.baseline_hops)
            assert row.hop_saving >= 1.0 - 1e-9

    def test_table_renders(self, tiny_workloads):
        rows = run_hopset_experiment(tiny_workloads, sample_pairs=50)
        table = format_hopset_table(rows)
        assert "hopbound" in table


class TestSourceDetectionExperiment:
    def test_detectors_agree_and_lp13_wins_beyond_phase0(self, tiny_workloads):
        rows = run_source_detection_experiment(tiny_workloads, phases=(0, 1))
        assert rows
        assert all(r.agree for r in rows)
        for row in rows:
            if row.phase >= 1:
                assert row.rounds_source_detection <= row.rounds_algorithm2

    def test_table_renders(self, tiny_workloads):
        rows = run_source_detection_experiment(tiny_workloads, phases=(0,))
        assert "Alg2" in format_source_detection_table(rows)


class TestRhoSweepExperiment:
    def test_size_bound_holds_for_every_rho(self):
        workload = workload_by_name("erdos-renyi", 48, seed=0)
        rows = run_rho_sweep_experiment(workload=workload, rhos=(0.4, 0.45))
        assert rows
        assert all(r.within_size_bound for r in rows)
        assert all(r.endpoints_know for r in rows)

    def test_rho_below_one_over_kappa_is_skipped(self):
        workload = workload_by_name("erdos-renyi", 48, seed=0)
        rows = run_rho_sweep_experiment(workload=workload, rhos=(0.1,), kappa=4.0)
        assert rows == []

    def test_table_and_figure_render(self):
        workload = workload_by_name("erdos-renyi", 48, seed=0)
        rows = run_rho_sweep_experiment(workload=workload, rhos=(0.45,))
        assert "rho" in format_rho_sweep_table(rows)
        assert "legend" in format_rho_sweep_figure(rows)


class TestApplicationsExperiment:
    def test_rows_and_invariants(self, tiny_workloads):
        rows = run_applications_experiment(tiny_workloads, sample_pairs=60, deletions=5)
        assert len(rows) == len(tiny_workloads)
        for row in rows:
            assert row.oracle_mean_stretch >= 1.0 - 1e-9
            assert row.oracle_max_stretch >= row.oracle_mean_stretch - 1e-9
            assert row.landmarks >= 1
            assert row.streaming_passes >= 1
            assert 0.0 <= row.rebuild_ratio <= 1.0

    def test_table_renders(self, tiny_workloads):
        rows = run_applications_experiment(tiny_workloads[:1], sample_pairs=40, deletions=3)
        assert "oracle" in format_applications_table(rows)
