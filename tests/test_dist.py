"""Tests for :mod:`repro.dist` — wire codec, journal, coordinator, workers.

The scenarios here drive the lease-queue state machine directly (method
calls on a started :class:`DistCoordinator`) and end-to-end through
``run_sweep(dist=...)`` with in-process thread workers.  Fault-schedule
chaos (worker kills, stragglers, coordinator restarts under load) lives
in ``tests/test_chaos.py``; this file owns the protocol-level contracts:
leases are exclusive, completion is idempotent, deliveries are believed
only if they read back, and the journal makes restarts resume instead of
re-run.
"""

from __future__ import annotations

import http.client
import json
import threading

import pytest

from repro import obs
from repro.api import GridSweep, run_sweep
from repro.api.cache import ResultCache
from repro.api.facade import build
from repro.api.spec import BuildSpec
from repro.dist import (
    DistConfig,
    DistCoordinator,
    DistWorker,
    SweepJournal,
    canonical_record,
    parse_bind,
    spec_from_wire,
    spec_to_wire,
)
from repro.dist.protocol import DONE, PENDING, QUARANTINED, wireable
from repro.faults import clear_plan, fault_plan
from repro.graphs import generators

GRID = generators.grid_graph(4, 4)

#: Small enough to sweep repeatedly, wide enough to need a queue.
SWEEP = GridSweep(products=("emulator", "spanner"), methods=("centralized",),
                  eps_values=(None, 0.25))


@pytest.fixture(autouse=True)
def dist_hygiene():
    """No fault plan leaks between tests; metrics start from zero."""
    clear_plan()
    previous = obs.set_enabled(True)
    obs.reset()
    yield
    clear_plan()
    obs.reset()
    obs.set_enabled(previous)


def _tasks(sweep: GridSweep = SWEEP):
    """Executor-shaped ``(index, name, graph, spec)`` tuples for GRID."""
    return [(index, "grid", GRID, spec)
            for index, spec in enumerate(sweep.specs())]


_RESULTS = {}


def _built(spec: BuildSpec):
    """Build (memoized) the result a worker would deliver for ``spec``."""
    if spec not in _RESULTS:
        _RESULTS[spec] = build(GRID, spec)
    return _RESULTS[spec]


def _canon(records):
    """The deterministic content of sweep records, order included."""
    return [(r.graph_name, r.spec, canonical_record(r.result))
            for r in records]


# ----------------------------------------------------------------------
# Wire protocol
# ----------------------------------------------------------------------
class TestWireProtocol:
    def test_spec_round_trips_bit_exactly(self):
        for _, _, _, spec in _tasks():
            wire = spec_to_wire(spec)
            assert json.loads(json.dumps(wire)) == wire
            assert spec_from_wire(wire) == spec

    def test_options_survive_the_wire(self):
        spec = BuildSpec(product="emulator", method="centralized",
                         options={"flag": True, "level": 3})
        assert spec_from_wire(spec_to_wire(spec)) == spec

    def test_non_scalar_option_is_unwireable(self):
        spec = BuildSpec(product="emulator", method="centralized",
                         options={"probe": [1, 2]})
        assert not wireable(spec)
        with pytest.raises(ValueError, match="not a JSON scalar"):
            spec_to_wire(spec)

    def test_parse_bind_forms(self):
        assert parse_bind("8123") == ("127.0.0.1", 8123)
        assert parse_bind("0.0.0.0:9") == ("0.0.0.0", 9)
        assert parse_bind("http://example:8000/") == ("example", 8000)
        with pytest.raises(ValueError, match="not PORT or HOST:PORT"):
            parse_bind("not-a-port")
        with pytest.raises(ValueError, match="out of range"):
            parse_bind("127.0.0.1:70000")

    def test_canonical_record_covers_the_deterministic_part(self):
        spec = next(iter(SWEEP.specs()))
        once, twice = build(GRID, spec), build(GRID, spec)
        assert canonical_record(once) == canonical_record(twice)
        assert canonical_record(None) is None

    def test_dist_config_rejects_unknown_knobs(self):
        with pytest.raises(ValueError, match="unknown dist option"):
            DistConfig.from_value({"lease_ttll": 1.0})
        with pytest.raises(ValueError, match="worker_mode"):
            DistConfig.from_value({"worker_mode": "fiber"})
        config = DistConfig.from_value("9321", workers_hint=3)
        assert (config.host, config.port) == ("127.0.0.1", 9321)
        assert config.local_workers == 3


# ----------------------------------------------------------------------
# Journal
# ----------------------------------------------------------------------
class TestSweepJournal:
    def test_record_then_replay(self, tmp_path):
        journal = SweepJournal(tmp_path / "sweep.journal", "abc123")
        assert journal.record({"event": "done", "task": 0, "key": "k0"})
        assert journal.record({"event": "quarantined", "task": 1, "key": "k1"})
        events = SweepJournal(journal.path, "abc123").replay()
        assert [e["event"] for e in events] == ["done", "quarantined"]
        assert journal.errors == 0

    def test_replay_skips_truncated_tail_and_garbage(self, tmp_path):
        journal = SweepJournal(tmp_path / "sweep.journal", "abc123")
        journal.record({"event": "done", "task": 0, "key": "k0"})
        with open(journal.path, "a", encoding="utf-8") as handle:
            handle.write("not json at all\n")
            handle.write('{"event": "done", "task": 1')  # killed mid-append
        events = SweepJournal(journal.path, "abc123").replay()
        assert [e["task"] for e in events] == [0]

    def test_journal_for_a_different_sweep_is_ignored(self, tmp_path):
        journal = SweepJournal(tmp_path / "sweep.journal", "old-sweep")
        journal.record({"event": "done", "task": 0, "key": "k0"})
        assert SweepJournal(journal.path, "new-sweep").replay() == []

    def test_rotation_compacts_to_terminal_events(self, tmp_path):
        journal = SweepJournal(tmp_path / "sweep.journal", "abc123",
                               rotate_bytes=64)
        for attempt in range(20):
            journal.record({"event": "done", "task": 0, "key": "k0",
                            "attempt": attempt})
        terminal = [{"event": "done", "task": 0, "key": "k0"}]
        assert journal.maybe_rotate(terminal)
        assert journal.rotations == 1
        lines = journal.path.read_text().splitlines()
        assert len(lines) == 2  # header + one compacted line
        assert SweepJournal(journal.path, "abc123").replay() == terminal
        assert not list(tmp_path.glob("*.journal.tmp"))

    def test_injected_journal_fault_counts_and_degrades(self, tmp_path):
        journal = SweepJournal(tmp_path / "sweep.journal", "abc123")
        plan = {"rules": [{"site": "dist.journal", "action": "raise",
                           "times": 1, "where": {"op": "append"}}]}
        with fault_plan(plan):
            assert not journal.record({"event": "done", "task": 0, "key": "k"})
            assert journal.errors == 1
            # The next append tries again and succeeds.
            assert journal.record({"event": "done", "task": 0, "key": "k"})
        assert [e["task"] for e in journal.replay()] == [0]


# ----------------------------------------------------------------------
# Coordinator state machine (direct method calls)
# ----------------------------------------------------------------------
class TestCoordinatorStateMachine:
    def test_lease_grants_lowest_index_then_reports_empty(self, tmp_path):
        with DistCoordinator(_tasks(), ResultCache(tmp_path)) as coordinator:
            first = coordinator.lease("w1")
            second = coordinator.lease("w2")
            assert first["task"]["id"] == 0 and second["task"]["id"] == 1
            assert first["lease"] != second["lease"]
            assert first["ttl"] == coordinator.lease_ttl
            assert coordinator.leases == 2
            # Everything leased out: an idle worker is told to back off.
            coordinator.lease("w1")
            coordinator.lease("w2")
            idle = coordinator.lease("w3")
            assert idle["task"] is None and not idle["done"]
            assert idle["retry_after"] > 0

    def test_completion_believes_the_store_not_the_worker(self, tmp_path):
        store = ResultCache(tmp_path)
        with DistCoordinator(_tasks(), store, max_attempts=3) as coordinator:
            lease = coordinator.lease("w1")
            task = lease["task"]
            # The worker claims delivery but never wrote the entry.
            answer = coordinator.complete({
                "worker": "w1", "task": task["id"], "lease": lease["lease"],
                "key": task["key"],
            })
            assert answer == {"ok": False, "accepted": False,
                              "reason": "unreadable", "state": PENDING}
            assert coordinator.rejected_completions == 1
            # Honest delivery: write the entry, then complete.
            row = coordinator.status()["rows"][task["id"]]
            assert row["state"] == PENDING and row["attempts"] == 1
            lease = coordinator.lease("w1")
            store.put(lease["task"]["key"], _built(_tasks()[0][3]))
            answer = coordinator.complete({
                "worker": "w1", "task": 0, "lease": lease["lease"],
                "key": lease["task"]["key"],
            })
            assert answer["accepted"] and answer["state"] == DONE

    def test_duplicate_completion_is_acknowledged_and_discarded(self, tmp_path):
        store = ResultCache(tmp_path)
        with DistCoordinator(_tasks(), store) as coordinator:
            lease = coordinator.lease("w1")
            store.put(lease["task"]["key"], _built(_tasks()[0][3]))
            body = {"worker": "w1", "task": 0, "lease": lease["lease"],
                    "key": lease["task"]["key"]}
            assert coordinator.complete(body)["accepted"]
            again = coordinator.complete(dict(body, worker="w2"))
            assert again == {"ok": True, "accepted": False, "state": DONE}
            assert coordinator.completions == 1
            assert coordinator.duplicate_completions == 1

    def test_expired_lease_is_reaped_and_stale_delivery_still_lands(self):
        import tempfile

        with tempfile.TemporaryDirectory() as tmp:
            store = ResultCache(tmp)
            coordinator = DistCoordinator(
                _tasks(), store, lease_ttl=0.15, max_attempts=5
            ).start()
            try:
                stale = coordinator.lease("slow")
                # No heartbeat: the background reaper reclaims the lease.
                deadline = threading.Event()
                assert not deadline.wait(0.5)
                fresh = coordinator.lease("fast")
                assert fresh["task"]["id"] == 0
                assert fresh["lease"] != stale["lease"]
                assert coordinator.reassignments >= 1
                assert obs.get_metric("repro_dist_reassignments_total") >= 1
                # The slow worker finally delivers on its dead lease; the
                # result is byte-identical, so it is accepted (idempotent
                # at-least-once), and the fresh worker's later delivery is
                # the duplicate.
                store.put(stale["task"]["key"], _built(_tasks()[0][3]))
                answer = coordinator.complete({
                    "worker": "slow", "task": 0, "lease": stale["lease"],
                    "key": stale["task"]["key"],
                })
                assert answer["accepted"] and answer["state"] == DONE
                assert coordinator.stale_completions == 1
                late = coordinator.complete({
                    "worker": "fast", "task": 0, "lease": fresh["lease"],
                    "key": fresh["task"]["key"],
                })
                assert late["accepted"] is False
                assert coordinator.duplicate_completions == 1
            finally:
                coordinator.close()

    def test_reported_errors_burn_attempts_until_quarantine(self, tmp_path):
        store = ResultCache(tmp_path)
        with DistCoordinator(_tasks(), store, max_attempts=2) as coordinator:
            for attempt in range(2):
                lease = coordinator.lease("w1")
                assert lease["task"]["id"] == 0
                assert lease["task"]["attempt"] == attempt + 1
                coordinator.complete({
                    "worker": "w1", "task": 0, "lease": lease["lease"],
                    "key": lease["task"]["key"], "error": "builder exploded",
                })
            row = coordinator.status()["rows"][0]
            assert row["state"] == QUARANTINED
            assert row["error"] == "builder exploded"
            assert obs.get_metric("repro_dist_quarantined_total") == 1
            # The quarantined task is terminal: index 1 is next out.
            assert coordinator.lease("w1")["task"]["id"] == 1
            index, worker, result, retries, error = coordinator.outcomes()[0]
            assert (index, result, retries) == (0, None, 1)
            assert "builder exploded" in error

    def test_heartbeat_renews_only_the_live_lease(self, tmp_path):
        with DistCoordinator(_tasks(), ResultCache(tmp_path)) as coordinator:
            lease = coordinator.lease("w1")
            good = coordinator.heartbeat({
                "worker": "w1", "task": 0, "lease": lease["lease"]})
            assert good["ok"] and good["ttl"] == coordinator.lease_ttl
            superseded = coordinator.heartbeat({
                "worker": "w1", "task": 0, "lease": "0.999"})
            assert superseded == {"ok": False, "state": "leased"}

    def test_uncacheable_task_is_rejected_at_construction(self, tmp_path):
        spec = next(iter(SWEEP.specs()))
        bad = BuildSpec(product=spec.product, method=spec.method,
                        options={"probe": object()})
        with pytest.raises(ValueError, match="uncacheable"):
            DistCoordinator([(0, "grid", GRID, bad)], ResultCache(tmp_path))


# ----------------------------------------------------------------------
# Journal resume
# ----------------------------------------------------------------------
class TestCoordinatorResume:
    def _complete_first(self, coordinator, store, count):
        for _ in range(count):
            lease = coordinator.lease("w1")
            task = lease["task"]
            spec = _tasks()[task["id"]][3]
            store.put(task["key"], _built(spec))
            coordinator.complete({
                "worker": "w1", "task": task["id"], "lease": lease["lease"],
                "key": task["key"],
            })

    def test_restarted_coordinator_resumes_instead_of_rerunning(self, tmp_path):
        store = ResultCache(tmp_path / "cache")
        journal_path = tmp_path / "sweep.journal"
        with DistCoordinator(_tasks(), store,
                             journal=str(journal_path)) as first:
            self._complete_first(first, store, 2)
            sweep_id = first.sweep_id
        # A new coordinator (same tasks, same journal) restores the two
        # completed tasks from disk and only serves what remains.
        with DistCoordinator(_tasks(), store,
                             journal=str(journal_path)) as second:
            assert second.sweep_id == sweep_id
            assert second.replayed == 2
            assert obs.get_metric("repro_dist_journal_replays_total") == 2
            states = [row["state"] for row in second.status()["rows"]]
            assert states.count(DONE) == 2
            assert {r["replayed"] for r in second.status()["rows"]
                    if r["state"] == DONE} == {True}
            self._complete_first(second, store, states.count(PENDING))
            assert second.done
            outcomes = second.outcomes()
        expected = [canonical_record(_built(spec)) for _, _, _, spec in _tasks()]
        assert [canonical_record(result)
                for _, _, result, _, _ in outcomes] == expected

    def test_replay_reruns_tasks_whose_cache_entry_was_lost(self, tmp_path):
        store = ResultCache(tmp_path / "cache")
        journal_path = tmp_path / "sweep.journal"
        with DistCoordinator(_tasks(), store,
                             journal=str(journal_path)) as first:
            self._complete_first(first, store, 1)
        store.clear()  # the journal says done, but the delivery is gone
        with DistCoordinator(_tasks(), store,
                             journal=str(journal_path)) as second:
            assert second.replayed == 0
            assert second.lease("w1")["task"]["id"] == 0

    def test_quarantine_survives_restart(self, tmp_path):
        store = ResultCache(tmp_path / "cache")
        journal_path = tmp_path / "sweep.journal"
        with DistCoordinator(_tasks(), store, max_attempts=1,
                             journal=str(journal_path)) as first:
            lease = first.lease("w1")
            first.complete({
                "worker": "w1", "task": 0, "lease": lease["lease"],
                "key": lease["task"]["key"], "error": "poisoned",
            })
        with DistCoordinator(_tasks(), store, max_attempts=1,
                             journal=str(journal_path)) as second:
            row = second.status()["rows"][0]
            assert row["state"] == QUARANTINED and row["replayed"]
            assert "poisoned" in row["error"]


# ----------------------------------------------------------------------
# End to end through run_sweep (thread workers)
# ----------------------------------------------------------------------
THREAD_DIST = {"worker_mode": "thread", "local_workers": 2, "lease_ttl": 2.0}


class TestDistributedSweep:
    def test_records_byte_identical_to_serial_executor(self):
        baseline = run_sweep({"grid": GRID}, SWEEP)
        records = run_sweep({"grid": GRID}, SWEEP, dist=dict(THREAD_DIST))
        assert _canon(records) == _canon(baseline)
        workers = {r.stats["worker"] for r in records}
        assert workers <= {"local-0", "local-1"}

    def test_workers_string_selects_the_distributed_executor(self):
        baseline = run_sweep({"grid": GRID}, SWEEP)
        records = run_sweep({"grid": GRID}, SWEEP, workers="dist:127.0.0.1:0",
                            dist={"worker_mode": "thread"})
        assert _canon(records) == _canon(baseline)
        with pytest.raises(ValueError, match="dist"):
            run_sweep({"grid": GRID}, SWEEP, workers="pool:4")

    def test_unwireable_specs_fall_back_to_the_local_serial_path(self):
        sweep = GridSweep(products=("emulator",), methods=("centralized",),
                          options={"probe": [1, 2]})
        spec = next(iter(sweep.specs()))
        assert not wireable(spec)
        baseline = run_sweep({"grid": GRID}, sweep)
        records = run_sweep({"grid": GRID}, sweep, dist=dict(THREAD_DIST))
        assert _canon(records) == _canon(baseline)

    def test_shared_cache_short_circuits_the_second_run(self, tmp_path):
        cache = str(tmp_path / "cache")
        first = run_sweep({"grid": GRID}, SWEEP, cache=cache,
                          dist=dict(THREAD_DIST))
        second = run_sweep({"grid": GRID}, SWEEP, cache=cache,
                           dist=dict(THREAD_DIST))
        assert _canon(second) == _canon(first)
        assert all(r.cache_hit for r in second)
        assert not any(r.cache_hit for r in first)

    def test_journal_knob_reaches_the_coordinator(self, tmp_path):
        journal = tmp_path / "sweep.journal"
        records = run_sweep({"grid": GRID}, SWEEP,
                            dist=dict(THREAD_DIST, journal=str(journal)))
        assert len(records) == len(list(SWEEP.specs()))
        events = journal.read_text().splitlines()
        assert len(events) == len(records) + 1  # header + one per task
        assert json.loads(events[0])["event"] == "sweep"


# ----------------------------------------------------------------------
# HTTP surface
# ----------------------------------------------------------------------
class TestHttpSurface:
    def _get(self, coordinator, path):
        connection = http.client.HTTPConnection(
            coordinator.host, coordinator.port, timeout=10)
        try:
            connection.request("GET", path)
            response = connection.getresponse()
            return response.status, response.read()
        finally:
            connection.close()

    def _post(self, coordinator, path, body):
        connection = http.client.HTTPConnection(
            coordinator.host, coordinator.port, timeout=10)
        try:
            connection.request("POST", path, body=json.dumps(body).encode(),
                               headers={"Content-Type": "application/json"})
            response = connection.getresponse()
            return response.status, json.loads(response.read())
        finally:
            connection.close()

    def test_status_healthz_metrics_and_graph(self, tmp_path):
        store = ResultCache(tmp_path)
        with DistCoordinator(_tasks(), store) as coordinator:
            worker = DistWorker(coordinator.url, store, worker_id="w1",
                                give_up_after=5.0)
            summary = worker.run()
            assert summary["completed"] == len(_tasks())
            assert not summary["crashed"]

            status, body = self._get(coordinator, "/status")
            payload = json.loads(body)
            assert status == 200 and payload["done"]
            assert payload["tasks"]["done"] == len(_tasks())
            assert payload["workers"]["w1"]["completed"] == len(_tasks())
            assert payload["workers"]["w1"]["live"]

            status, body = self._get(coordinator, "/healthz")
            assert status == 200
            assert json.loads(body)["status"] == "done"

            status, body = self._get(coordinator, "/metrics")
            text = body.decode()
            assert status == 200
            assert "repro_dist_leases_total" in text
            assert "repro_dist_completions_total" in text
            assert "repro_dist_workers_live" in text

            graph_hash = _tasks()[0][2].content_hash()
            status, blob = self._get(coordinator, f"/graph?hash={graph_hash}")
            assert status == 200 and len(blob) > 0

    def test_protocol_errors_have_distinct_statuses(self, tmp_path):
        with DistCoordinator(_tasks(), ResultCache(tmp_path)) as coordinator:
            status, _ = self._post(coordinator, "/frobnicate", {})
            assert status == 404
            status, _ = self._get(coordinator, "/graph?hash=deadbeef")
            assert status == 404
            status, body = self._post(coordinator, "/complete", {"worker": "w"})
            assert status == 400
            assert "task" in body["error"]
            status, _ = self._post(coordinator, "/complete",
                                   {"worker": "w", "task": 99, "lease": "x"})
            assert status == 404

    def test_injected_coordinator_fault_is_a_retryable_503(self, tmp_path):
        with DistCoordinator(_tasks(), ResultCache(tmp_path)) as coordinator:
            plan = {"rules": [{"site": "dist.lease", "action": "raise",
                               "times": 1}]}
            with fault_plan(plan):
                connection = http.client.HTTPConnection(
                    coordinator.host, coordinator.port, timeout=10)
                try:
                    connection.request(
                        "POST", "/lease", body=json.dumps({"worker": "w"}).encode(),
                        headers={"Content-Type": "application/json"})
                    response = connection.getresponse()
                    body = json.loads(response.read())
                    assert response.status == 503
                    assert response.getheader("Retry-After") is not None
                    assert body["transient"]
                finally:
                    connection.close()
            # The fault was times-bounded: the next lease succeeds.
            assert coordinator.lease("w")["task"] is not None
