"""Tests for the hopset package (bounded-hop distances and hopset construction)."""

from __future__ import annotations

import pytest

from repro.graphs.shortest_paths import bfs_distances
from repro.graphs.weighted_graph import WeightedGraph
from repro.hopsets import (
    build_hopset,
    hop_limited_distance,
    hop_limited_distances,
    union_with_graph,
    verify_hopset,
)
from repro.hopsets.hopset import exact_hopbound, measured_hopbound


class TestUnionWithGraph:
    def test_union_without_overlay_is_unit_weight_copy(self, path10):
        union = union_with_graph(path10)
        assert union.num_edges == path10.num_edges
        assert all(w == 1.0 for _, _, w in union.edges())

    def test_union_adds_overlay_edges(self, path10):
        overlay = WeightedGraph(10)
        overlay.add_edge(0, 9, 5.0)
        union = union_with_graph(path10, overlay)
        assert union.has_edge(0, 9)
        assert union.weight(0, 9) == 5.0
        assert union.num_edges == path10.num_edges + 1

    def test_union_keeps_minimum_weight_on_shared_edge(self, path10):
        overlay = WeightedGraph(10)
        overlay.add_edge(0, 1, 3.0)  # heavier than the unit graph edge
        union = union_with_graph(path10, overlay)
        assert union.weight(0, 1) == 1.0

    def test_union_rejects_vertex_count_mismatch(self, path10):
        overlay = WeightedGraph(5)
        with pytest.raises(ValueError):
            union_with_graph(path10, overlay)


class TestHopLimitedDistances:
    def test_zero_hops_reaches_only_the_source(self, path10):
        union = union_with_graph(path10)
        assert hop_limited_distances(union, 3, 0) == {3: 0.0}

    def test_hop_budget_limits_reach_on_a_path(self, path10):
        union = union_with_graph(path10)
        dist = hop_limited_distances(union, 0, 3)
        assert dist[3] == 3.0
        assert 4 not in dist

    def test_large_budget_matches_dijkstra(self, random_graph):
        union = union_with_graph(random_graph)
        limited = hop_limited_distances(union, 0, random_graph.num_vertices)
        exact = union.dijkstra(0)
        assert limited == exact

    def test_shortcut_edge_reduces_needed_hops(self, path10):
        overlay = WeightedGraph(10)
        overlay.add_edge(0, 9, 9.0)  # weight equals the true distance
        union = union_with_graph(path10, overlay)
        assert hop_limited_distance(union, 0, 9, 1) == 9.0
        # Without the shortcut, one hop is not enough.
        assert hop_limited_distance(union_with_graph(path10), 0, 9, 1) == float("inf")

    def test_hop_limited_never_undershoots_graph_distance(self, random_graph):
        union = union_with_graph(random_graph)
        exact = bfs_distances(random_graph, 5)
        limited = hop_limited_distances(union, 5, 4)
        for v, d in limited.items():
            assert d >= exact[v] - 1e-9

    def test_negative_hops_rejected(self, path10):
        union = union_with_graph(path10)
        with pytest.raises(ValueError):
            hop_limited_distances(union, 0, -1)

    def test_bad_source_rejected(self, path10):
        union = union_with_graph(path10)
        with pytest.raises(ValueError):
            hop_limited_distances(union, 42, 2)


class TestBuildHopset:
    def test_hopset_edges_are_the_emulator_edges(self, random_graph):
        result = build_hopset(random_graph, eps=0.1, kappa=4.0)
        assert result.hopset is result.emulator_result.emulator
        assert result.num_vertices == random_graph.num_vertices

    def test_hopset_respects_emulator_size_bound(self, random_graph):
        result = build_hopset(random_graph, eps=0.1, kappa=4.0)
        assert result.num_edges <= result.emulator_result.size_bound + 1e-9

    def test_ultra_sparse_default_kappa(self, random_graph):
        result = build_hopset(random_graph, eps=0.1)
        # Ultra-sparse regime: barely more than n edges.
        assert result.num_edges <= random_graph.num_vertices * 1.2

    def test_hopbound_estimate_positive(self, small_random_graph):
        result = build_hopset(small_random_graph, eps=0.1, kappa=4.0)
        assert result.hopbound_estimate >= 1

    def test_union_helper_on_result(self, small_random_graph):
        result = build_hopset(small_random_graph, eps=0.1, kappa=4.0)
        union = result.union(small_random_graph)
        assert union.num_vertices == small_random_graph.num_vertices
        assert union.num_edges >= small_random_graph.num_edges


class TestVerifyAndMeasure:
    def test_verify_hopset_accepts_generous_budget(self, small_random_graph):
        result = build_hopset(small_random_graph, eps=0.1, kappa=4.0)
        valid, excess = verify_hopset(
            small_random_graph,
            result.hopset,
            hopbound=small_random_graph.num_vertices,
            alpha=result.alpha,
            beta=result.beta,
        )
        assert valid
        assert excess <= 0

    def test_verify_hopset_rejects_zero_budget_guaranteeless_pairing(self, path10):
        # With hopbound 1 and no hopset edges, distant pairs are unreachable,
        # so the (1, 0) guarantee cannot hold.
        empty = WeightedGraph(10)
        valid, excess = verify_hopset(path10, empty, hopbound=1, alpha=1.0, beta=0.0)
        assert not valid
        assert excess > 0

    def test_measured_hopbound_at_most_graph_diameter(self, grid6x6):
        result = build_hopset(grid6x6, eps=0.1, kappa=4.0)
        measured = measured_hopbound(
            grid6x6, result.hopset, result.alpha, result.beta, sample_pairs=None
        )
        exact = exact_hopbound(grid6x6, result.hopset, sample_pairs=None)
        diameter = 10  # 6x6 grid
        assert 1 <= measured <= diameter
        assert 1 <= exact <= diameter

    def test_exact_hopbound_is_at_least_guarantee_hopbound(self, grid6x6):
        # Matching the full union distance is a stricter requirement than
        # meeting the (alpha, beta) guarantee, so it needs at least as many hops.
        result = build_hopset(grid6x6, eps=0.1, kappa=4.0)
        guarantee = measured_hopbound(
            grid6x6, result.hopset, result.alpha, result.beta, sample_pairs=None
        )
        exact = exact_hopbound(grid6x6, result.hopset, sample_pairs=None)
        assert exact >= guarantee

    def test_exact_hopbound_one_on_a_clique(self, clique8):
        result = build_hopset(clique8, eps=0.1, kappa=4.0)
        assert exact_hopbound(clique8, result.hopset, sample_pairs=None) == 1

    def test_verify_raises_on_undershooting_hopset(self, path10):
        # A hopset edge lighter than the graph distance must be caught.
        cheating = WeightedGraph(10)
        cheating.add_edge(0, 9, 1.0)
        with pytest.raises(AssertionError):
            verify_hopset(path10, cheating, hopbound=10, alpha=10.0, beta=100.0)

    def test_star_graph_needs_two_hops(self, star20):
        result = build_hopset(star20, eps=0.1, kappa=4.0)
        # Leaf-to-leaf distances are 2 and the hopset cannot beat 2 hops
        # unless it contains a direct leaf-leaf edge of weight 2; either way
        # the exact hopbound is at most 2.
        assert exact_hopbound(star20, result.hopset, sample_pairs=None) <= 2
