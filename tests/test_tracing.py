"""Tests for the CONGEST network tracer."""

from __future__ import annotations

import pytest

from repro.congest.network import BandwidthViolation, SynchronousNetwork
from repro.congest.primitives import distributed_bfs
from repro.congest.tracing import NetworkTracer
from repro.graphs import generators


class TestTracerForwarding:
    def test_send_and_deliver_forwarded(self, path10):
        tracer = NetworkTracer(SynchronousNetwork(path10))
        tracer.send(0, 1, (42,))
        delivered = tracer.deliver()
        assert delivered[1][0].payload == (42,)
        assert tracer.total_messages == 1

    def test_attribute_forwarding(self, path10):
        net = SynchronousNetwork(path10)
        tracer = NetworkTracer(net)
        assert tracer.graph is path10
        tracer.charge_rounds(5)
        assert net.charged_rounds == 5

    def test_bandwidth_violation_still_raised(self, path10):
        tracer = NetworkTracer(SynchronousNetwork(path10))
        tracer.send(0, 1, (1,))
        with pytest.raises(BandwidthViolation):
            tracer.send(0, 1, (2,))

    def test_tracer_usable_by_primitives(self, grid6x6):
        tracer = NetworkTracer(SynchronousNetwork(grid6x6))
        forest = distributed_bfs(tracer, [0])
        assert len(forest.dist) == grid6x6.num_vertices
        assert tracer.rounds  # at least one round recorded


class TestTraceRecords:
    def test_round_records_count_messages(self, path10):
        tracer = NetworkTracer(SynchronousNetwork(path10))
        tracer.send(0, 1, (1,))
        tracer.send(2, 3, (2,))
        tracer.deliver()
        assert tracer.rounds[0].messages == 2

    def test_busiest_vertex_identified(self, star20):
        tracer = NetworkTracer(SynchronousNetwork(star20))
        for leaf in (1, 2, 3):
            tracer.send(0, leaf, (leaf,))
        tracer.send(5, 0, (5,))
        tracer.deliver()
        record = tracer.rounds[0]
        assert record.busiest_vertex == 0
        assert record.busiest_vertex_messages == 3

    def test_empty_round_recorded_with_sentinel(self, path10):
        tracer = NetworkTracer(SynchronousNetwork(path10))
        tracer.deliver()
        assert tracer.rounds[0].busiest_vertex == -1
        assert tracer.rounds[0].messages == 0


class TestSummaryAndFormatting:
    def test_summary_aggregates_counts(self, grid6x6):
        tracer = NetworkTracer(SynchronousNetwork(grid6x6))
        distributed_bfs(tracer, [0, 35])
        summary = tracer.summary()
        assert summary.simulated_rounds == len(tracer.rounds)
        assert summary.total_messages == tracer.network.total_messages
        assert summary.max_messages_in_a_round >= 1
        assert summary.busiest_vertex in grid6x6

    def test_summary_on_idle_network(self, path10):
        tracer = NetworkTracer(SynchronousNetwork(path10))
        summary = tracer.summary()
        assert summary.simulated_rounds == 0
        assert summary.busiest_vertex == -1

    def test_format_trace_truncates(self):
        graph = generators.cycle_graph(8)
        tracer = NetworkTracer(SynchronousNetwork(graph))
        distributed_bfs(tracer, [0])
        text = tracer.format_trace(limit=2)
        assert "round" in text
        if len(tracer.rounds) > 2:
            assert "more rounds" in text
