"""Tests for the popular-cluster detection (Algorithm 2, modified Bellman-Ford)."""

from __future__ import annotations

import pytest

from repro.congest.bellman_ford import detect_popular_clusters
from repro.congest.network import SynchronousNetwork
from repro.graphs.shortest_paths import bfs_distances


def brute_force_popular(graph, centers, degree_threshold, distance_threshold):
    """Ground truth: centers with >= degree_threshold other centers within distance."""
    centers = set(centers)
    popular = set()
    for c in centers:
        dist = bfs_distances(graph, c)
        count = sum(
            1 for other in centers
            if other != c and dist.get(other, float("inf")) <= distance_threshold
        )
        if count >= degree_threshold:
            popular.add(c)
    return popular


class TestDetection:
    def test_matches_ground_truth_all_vertices(self, random_graph):
        centers = list(random_graph.vertices())
        result = detect_popular_clusters(random_graph, centers, 5, 2)
        assert result.popular == brute_force_popular(random_graph, centers, 5, 2)

    def test_matches_ground_truth_subset(self, random_graph):
        centers = [v for v in random_graph.vertices() if v % 3 == 0]
        result = detect_popular_clusters(random_graph, centers, 3, 3)
        assert result.popular == brute_force_popular(random_graph, centers, 3, 3)

    def test_star_center_popular(self, star20):
        result = detect_popular_clusters(star20, list(star20.vertices()), 5, 1)
        assert 0 in result.popular
        # Leaves have only one neighbor (the hub), so they are unpopular.
        assert 1 not in result.popular

    def test_path_no_popular(self, path10):
        result = detect_popular_clusters(path10, list(path10.vertices()), 3, 1)
        assert result.popular == set()

    def test_fractional_degree_threshold(self, random_graph):
        centers = list(random_graph.vertices())
        result = detect_popular_clusters(random_graph, centers, 4.5, 2)
        assert result.popular == brute_force_popular(random_graph, centers, 4.5, 2)

    def test_unpopular_centers_know_all_neighbors(self, random_graph):
        # Theorem 3.1(2): every unpopular center knows every center within
        # the distance threshold, with exact distances.
        centers = list(random_graph.vertices())
        threshold, delta = 6, 2
        result = detect_popular_clusters(random_graph, centers, threshold, delta)
        for c in centers:
            if c in result.popular:
                continue
            dist = bfs_distances(random_graph, c)
            expected = {
                other: d for other, d in dist.items()
                if other != c and other in set(centers) and d <= delta
            }
            assert result.knowledge[c] == expected

    def test_popular_centers_learn_enough(self, random_graph):
        centers = list(random_graph.vertices())
        result = detect_popular_clusters(random_graph, centers, 5, 2)
        for c in result.popular:
            assert len(result.knowledge[c]) >= 5

    def test_all_learned_contains_sources_within_radius(self, grid6x6):
        centers = [0, 7, 14, 21, 28, 35]
        result = detect_popular_clusters(grid6x6, centers, 2, 4)
        for v in grid6x6.vertices():
            dist = bfs_distances(grid6x6, v)
            for c in centers:
                if c in result.all_learned[v]:
                    # learned distances are exact or an upper bound >= true distance
                    assert result.all_learned[v][c] >= dist[c]

    def test_no_centers(self, path10):
        result = detect_popular_clusters(path10, [], 2, 3)
        assert result.popular == set()
        assert result.knowledge == {}

    def test_invalid_center(self, path10):
        with pytest.raises(ValueError):
            detect_popular_clusters(path10, [99], 2, 3)

    def test_distances_are_exact_for_learned_unpopular(self, grid6x6):
        centers = [0, 5, 30, 35]
        result = detect_popular_clusters(grid6x6, centers, 10, 12)
        for c in centers:
            dist = bfs_distances(grid6x6, c)
            for other, d in result.knowledge[c].items():
                assert d == dist[other]


class TestAccounting:
    def test_round_charge_formula(self, path10):
        net = SynchronousNetwork(path10)
        result = detect_popular_clusters(path10, list(path10.vertices()), 3, 4, net=net)
        assert result.rounds == 4 * (3 + 1)
        assert net.charged_rounds == result.rounds
        assert net.total_messages == result.messages

    def test_messages_positive_when_centers_exist(self, grid6x6):
        result = detect_popular_clusters(grid6x6, [0, 35], 1, 3)
        assert result.messages > 0

    def test_zero_strides(self, path10):
        result = detect_popular_clusters(path10, [0, 5], 2, 0.5)
        assert result.popular == set()
        assert result.rounds == 0
