"""Tests for the distributed CONGEST spanner construction (Section 4)."""

from __future__ import annotations

import pytest

from repro.analysis.validation import verify_spanner
from repro.core.parameters import SpannerSchedule, size_bound
from repro.distributed.spanner_congest import (
    DistributedSpannerBuilder,
    build_spanner_congest,
)
from repro.graphs import generators
from repro.graphs.graph import Graph


@pytest.fixture(scope="module")
def spanner_result():
    graph = generators.connected_erdos_renyi(60, 0.08, seed=21)
    return graph, build_spanner_congest(graph, eps=0.01, kappa=4, rho=0.45)


class TestSubgraphAndStretch:
    def test_is_subgraph(self, spanner_result):
        graph, result = spanner_result
        assert result.is_subgraph_of(graph)

    def test_stretch_guarantee(self, spanner_result):
        graph, result = spanner_result
        report = verify_spanner(graph, result.spanner, result.alpha, result.beta)
        assert report.valid

    def test_connected_input_gives_connected_spanner(self, spanner_result):
        graph, result = spanner_result
        assert result.spanner.is_connected()

    def test_grid(self):
        graph = generators.grid_graph(6, 6)
        result = build_spanner_congest(graph, eps=0.01, kappa=4, rho=0.45)
        assert result.is_subgraph_of(graph)
        report = verify_spanner(graph, result.spanner, result.alpha, result.beta)
        assert report.valid

    def test_empty_graph(self):
        result = build_spanner_congest(Graph(4), eps=0.01, kappa=4, rho=0.45)
        assert result.num_edges == 0

    def test_disconnected(self, disconnected_graph):
        result = build_spanner_congest(disconnected_graph, eps=0.01, kappa=4, rho=0.45)
        assert result.is_subgraph_of(disconnected_graph)
        assert len(result.spanner.connected_components()) == len(
            disconnected_graph.connected_components()
        )


class TestSizeAndAccounting:
    def test_size_near_bound(self, spanner_result):
        graph, result = spanner_result
        assert result.num_edges <= 4 * size_bound(graph.num_vertices, 4)

    def test_rounds_and_messages_positive(self, spanner_result):
        _, result = spanner_result
        assert result.rounds > 0
        assert result.messages > 0

    def test_edge_breakdown(self, spanner_result):
        _, result = spanner_result
        assert result.superclustering_edges + result.interconnection_edges >= result.num_edges

    def test_superclustering_edges_within_forest_bound(self, spanner_result):
        graph, result = spanner_result
        for stats in result.phase_stats:
            assert stats.superclustering_edges <= graph.num_vertices - 1

    def test_phase_stats_count(self, spanner_result):
        _, result = spanner_result
        assert len(result.phase_stats) == result.schedule.num_phases

    def test_as_weighted_unit(self, spanner_result):
        _, result = spanner_result
        for _, _, w in result.as_weighted().edges():
            assert w == 1.0


class TestBuilderApi:
    def test_schedule_mismatch_rejected(self, path10):
        schedule = SpannerSchedule(n=99, eps=0.01, kappa=4, rho=0.45)
        with pytest.raises(ValueError):
            DistributedSpannerBuilder(path10, schedule=schedule)

    def test_deterministic(self):
        graph = generators.connected_erdos_renyi(40, 0.1, seed=31)
        r1 = build_spanner_congest(graph, eps=0.01, kappa=4, rho=0.45)
        r2 = build_spanner_congest(graph, eps=0.01, kappa=4, rho=0.45)
        assert sorted(r1.spanner.edges()) == sorted(r2.spanner.edges())
        assert r1.rounds == r2.rounds

    def test_sparser_than_em19_on_dense_graph(self):
        from repro.baselines.em19_spanner import build_em19_spanner

        graph = generators.erdos_renyi(60, 0.3, seed=4)
        ours = build_spanner_congest(graph, eps=0.01, kappa=3, rho=0.4)
        em19 = build_em19_spanner(graph, eps=0.01, kappa=3, rho=0.4)
        # The Section 4 spanner is never (meaningfully) denser than EM19.
        assert ours.num_edges <= em19.num_edges * 1.1 + 5
