"""Tests for distributed BFS, floods, broadcast and convergecast."""

from __future__ import annotations

import pytest

from repro.congest.network import SynchronousNetwork
from repro.congest.primitives import (
    bounded_flood,
    broadcast_on_tree,
    convergecast_on_tree,
    distributed_bfs,
)
from repro.graphs.shortest_paths import bfs_distances, multi_source_bfs


class TestDistributedBfs:
    def test_single_source_matches_centralized(self, random_graph):
        net = SynchronousNetwork(random_graph)
        forest = distributed_bfs(net, [0])
        assert forest.dist == bfs_distances(random_graph, 0)

    def test_rounds_track_depth(self, path10):
        net = SynchronousNetwork(path10)
        forest = distributed_bfs(net, [0])
        # One round per BFS level plus one final quiescence round.
        assert net.current_round in (9, 10)
        assert forest.depth == 9

    def test_depth_bound(self, path10):
        net = SynchronousNetwork(path10)
        forest = distributed_bfs(net, [0], depth=3)
        assert set(forest.dist) == {0, 1, 2, 3}

    def test_multi_source_matches_centralized(self, grid6x6):
        net = SynchronousNetwork(grid6x6)
        forest = distributed_bfs(net, [0, 35])
        dist, origin = multi_source_bfs(grid6x6, [0, 35])
        assert forest.dist == dist
        # Root assignment may differ only on exact ties; distances must agree.
        for v, r in forest.root.items():
            assert forest.dist[v] == dist[v]
            assert r in (0, 35)

    def test_parent_structure(self, random_graph):
        net = SynchronousNetwork(random_graph)
        forest = distributed_bfs(net, [0])
        for v, p in forest.parent.items():
            if v != 0:
                assert forest.dist[p] == forest.dist[v] - 1
                assert random_graph.has_edge(v, p)

    def test_tree_of_and_children(self, path10):
        net = SynchronousNetwork(path10)
        forest = distributed_bfs(net, [0, 9], depth=4)
        tree0 = forest.tree_of(0)
        tree9 = forest.tree_of(9)
        assert tree0 & tree9 == set()
        children = forest.children()
        assert 1 in children[0]

    def test_path_to_root(self, path10):
        net = SynchronousNetwork(path10)
        forest = distributed_bfs(net, [0])
        assert forest.path_to_root(4) == [4, 3, 2, 1, 0]

    def test_invalid_root(self, path10):
        net = SynchronousNetwork(path10)
        with pytest.raises(ValueError):
            distributed_bfs(net, [42])

    def test_respects_bandwidth(self, random_graph):
        # The BFS must run without triggering a bandwidth violation in
        # strict mode (one message per edge per round).
        net = SynchronousNetwork(random_graph, strict=True)
        distributed_bfs(net, [0, 1, 2])
        assert net.bandwidth_violations == 0


class TestBoundedFlood:
    def test_flood_distances(self, grid6x6):
        net = SynchronousNetwork(grid6x6)
        dist = bounded_flood(net, [0], depth=3)
        expected = {v: d for v, d in bfs_distances(grid6x6, 0).items() if d <= 3}
        assert dist == expected

    def test_flood_multiple_sources(self, path10):
        net = SynchronousNetwork(path10)
        dist = bounded_flood(net, [0, 9], depth=2)
        assert dist[1] == 1 and dist[8] == 1
        assert 4 not in dist


class TestBroadcast:
    def test_broadcast_reaches_all_tree_vertices(self, grid6x6):
        net = SynchronousNetwork(grid6x6)
        forest = distributed_bfs(net, [0])
        items = [(1, 10), (2, 20), (3, 30)]
        received, rounds = broadcast_on_tree(net, forest, 0, items)
        for v in forest.tree_of(0):
            assert received[v] == items if v != 0 else list(items)
        assert rounds >= forest.depth

    def test_broadcast_empty_items(self, path10):
        net = SynchronousNetwork(path10)
        forest = distributed_bfs(net, [0])
        received, rounds = broadcast_on_tree(net, forest, 0, [])
        assert rounds == 0
        assert received == {0: []}

    def test_broadcast_pipelining_round_count(self, path10):
        # k items down a path of depth d take about k + d rounds.
        net = SynchronousNetwork(path10)
        forest = distributed_bfs(net, [0])
        start_round = net.current_round
        _, rounds = broadcast_on_tree(net, forest, 0, [(i,) for i in range(5)])
        assert rounds <= 5 + 9
        assert net.current_round - start_round == rounds


class TestConvergecast:
    def test_collects_all_items(self, grid6x6):
        net = SynchronousNetwork(grid6x6)
        forest = distributed_bfs(net, [0])
        leaf_values = {v: [(v,)] for v in forest.tree_of(0) if v != 0}
        items, rounds = convergecast_on_tree(net, forest, 0, leaf_values)
        assert sorted(items) == sorted(leaf_values[v][0] for v in leaf_values)
        assert rounds > 0

    def test_cap_drops_excess(self, star20):
        net = SynchronousNetwork(star20)
        forest = distributed_bfs(net, [1])  # a leaf as root: depth-2 tree via center
        leaf_values = {v: [(v,)] for v in forest.tree_of(1) if v != 1}
        items, _ = convergecast_on_tree(net, forest, 1, leaf_values, per_stride_cap=3)
        assert len(items) <= 3 + 1  # capped batch from the hub plus its own

    def test_empty_tree(self, path10):
        net = SynchronousNetwork(path10)
        forest = distributed_bfs(net, [0], depth=0)
        items, rounds = convergecast_on_tree(net, forest, 0, {})
        assert items == []
        assert rounds == 0

    def test_rounds_charged_to_network(self, grid6x6):
        net = SynchronousNetwork(grid6x6)
        forest = distributed_bfs(net, [0])
        before = net.rounds_elapsed
        _, rounds = convergecast_on_tree(net, forest, 0, {35: [(35,)]})
        assert net.rounds_elapsed >= before + rounds
