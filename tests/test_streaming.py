"""Tests for the semi-streaming substrate and constructions."""

from __future__ import annotations

import pytest

from repro.analysis.validation import verify_spanner
from repro.applications.streaming import (
    EdgeStream,
    StreamingEmulatorBuilder,
    streaming_greedy_spanner,
)
from repro.core.emulator import build_emulator
from repro.graphs import generators


class TestEdgeStream:
    def test_stream_deduplicates_edges(self):
        stream = EdgeStream(4, [(0, 1), (1, 0), (0, 1), (2, 3)])
        assert stream.num_edges == 2

    def test_stream_rejects_self_loops(self):
        with pytest.raises(ValueError):
            EdgeStream(4, [(1, 1)])

    def test_stream_rejects_out_of_range_edges(self):
        with pytest.raises(ValueError):
            EdgeStream(4, [(0, 7)])

    def test_each_iteration_counts_one_pass(self, random_graph):
        stream = EdgeStream.from_graph(random_graph)
        assert stream.passes == 0
        list(stream)
        list(stream)
        assert stream.passes == 2

    def test_to_graph_round_trips(self, random_graph):
        stream = EdgeStream.from_graph(random_graph)
        rebuilt = stream.to_graph()
        assert rebuilt == random_graph
        assert stream.passes == 1

    def test_from_graph_preserves_edge_count(self, grid6x6):
        stream = EdgeStream.from_graph(grid6x6)
        assert stream.num_edges == grid6x6.num_edges
        assert stream.num_vertices == grid6x6.num_vertices


class TestStreamingGreedySpanner:
    def test_single_pass(self, random_graph):
        stream = EdgeStream.from_graph(random_graph)
        _, stats = streaming_greedy_spanner(stream, k=2)
        assert stats.passes == 1

    def test_output_is_a_valid_multiplicative_spanner(self, random_graph):
        stream = EdgeStream.from_graph(random_graph)
        spanner, _ = streaming_greedy_spanner(stream, k=2)
        report = verify_spanner(random_graph, spanner, alpha=3.0, beta=0.0)
        assert report.valid

    def test_k1_keeps_every_edge(self, grid6x6):
        stream = EdgeStream.from_graph(grid6x6)
        spanner, stats = streaming_greedy_spanner(stream, k=1)
        assert spanner.num_edges == grid6x6.num_edges
        assert stats.output_edges == grid6x6.num_edges

    def test_larger_k_never_keeps_more_edges(self, random_graph):
        sizes = []
        for k in (1, 2, 3):
            stream = EdgeStream.from_graph(random_graph)
            spanner, _ = streaming_greedy_spanner(stream, k=k)
            sizes.append(spanner.num_edges)
        assert sizes[0] >= sizes[1] >= sizes[2]

    def test_invalid_k_rejected(self, path10):
        with pytest.raises(ValueError):
            streaming_greedy_spanner(EdgeStream.from_graph(path10), k=0)

    def test_tree_input_is_kept_verbatim(self):
        tree = generators.random_tree(40, seed=3)
        spanner, _ = streaming_greedy_spanner(EdgeStream.from_graph(tree), k=2)
        assert spanner.num_edges == tree.num_edges


class TestStreamingEmulatorBuilder:
    def test_emulator_matches_centralized_construction(self, small_random_graph):
        stream = EdgeStream.from_graph(small_random_graph)
        builder = StreamingEmulatorBuilder(stream, eps=0.1, kappa=4.0)
        result, _ = builder.build()
        centralized = build_emulator(small_random_graph, schedule=builder.schedule)
        assert sorted(result.emulator.edges()) == sorted(centralized.emulator.edges())

    def test_one_pass_per_phase(self, small_random_graph):
        stream = EdgeStream.from_graph(small_random_graph)
        builder = StreamingEmulatorBuilder(stream, eps=0.1, kappa=4.0)
        _, stats = builder.build()
        assert stats.passes == builder.schedule.num_phases

    def test_peak_memory_accounts_for_graph_and_output(self, small_random_graph):
        stream = EdgeStream.from_graph(small_random_graph)
        result, stats = StreamingEmulatorBuilder(stream, eps=0.1, kappa=4.0).build()
        assert stats.peak_memory_edges >= small_random_graph.num_edges
        assert stats.output_edges == result.num_edges

    def test_size_bound_still_holds(self, small_random_graph):
        stream = EdgeStream.from_graph(small_random_graph)
        result, _ = StreamingEmulatorBuilder(stream, eps=0.1, kappa=4.0).build()
        assert result.within_size_bound()

    def test_ultra_sparse_default(self, random_graph):
        stream = EdgeStream.from_graph(random_graph)
        result, _ = StreamingEmulatorBuilder(stream, eps=0.1).build()
        assert result.num_edges <= random_graph.num_vertices * 1.2
