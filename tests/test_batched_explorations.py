"""Equivalence and transparency tests for the batched exploration layer.

The contract: :func:`repro.graphs.kernels.batched_bfs`,
:func:`repro.graphs.kernels.multi_source_attributed` and
:class:`repro.graphs.shortest_paths.PhaseExplorer` are **byte-identical**
stand-ins for the per-source calls they batch — same entries, same
canonical ``(distance, vertex)`` iteration order — on every importable
backend, every graph shape (random, disconnected, empty, edgeless),
every radius shape (0, fractional, ``inf``, unbounded), and every chunk
boundary (budgets forcing 1-source chunks).  On top of the kernel
contract, every rewired construction and the ``local`` query workload
must emit identical output with batching enabled and disabled
(``REPRO_BATCH_DISABLE=1``).
"""

from __future__ import annotations

import random
import warnings

import pytest

from repro.graphs import kernels
from repro.graphs.graph import Graph
from repro.graphs.shortest_paths import (
    ExplorationCache,
    PhaseExplorer,
    _dict_bounded_bfs,
    _dict_multi_source_bfs,
    bounded_bfs,
    multi_source_attributed,
    shared_explorations,
)

BACKENDS = kernels.available_backends()


@pytest.fixture(params=BACKENDS)
def backend(request):
    """Run the test once per importable kernel backend."""
    kernels.set_backend(request.param)
    yield request.param
    kernels.set_backend("auto")


@pytest.fixture
def batching_disabled_env(monkeypatch):
    """Force the per-source fallback path."""
    monkeypatch.setenv("REPRO_BATCH_DISABLE", "1")


def random_graph(n, avg_degree, seed):
    rng = random.Random(seed)
    g = Graph(n)
    target = min(n * (n - 1) // 2, int(n * avg_degree / 2))
    while g.num_edges < target:
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v:
            g.add_edge(u, v)
    return g


def disconnected_graph(seed):
    """Two random components plus isolated vertices."""
    rng = random.Random(seed)
    g = Graph(60)
    for lo, hi in ((0, 25), (25, 50)):  # vertices 50..59 stay isolated
        for _ in range(60):
            u, v = rng.randrange(lo, hi), rng.randrange(lo, hi)
            if u != v:
                g.add_edge(u, v)
    return g


GRAPH_CASES = [
    Graph(0),
    Graph(1),
    Graph(2, [(0, 1)]),
    Graph(5),  # edgeless
    Graph(6, [(i, i + 1) for i in range(5)]),  # path
    Graph(8, [(i, (i + 1) % 8) for i in range(8)]),  # cycle
    disconnected_graph(7),
    random_graph(40, 3.0, 11),
    random_graph(90, 6.0, 12),
    random_graph(150, 2.0, 13),
]

RADII = (None, 0, 1, 2, 2.9, 5, float("inf"))


# ----------------------------------------------------------------------
# batched_bfs equivalence
# ----------------------------------------------------------------------
def test_batched_bfs_equivalence_randomized(backend):
    rng = random.Random(hash(backend) & 0xFFFF)
    for g in GRAPH_CASES:
        n = g.num_vertices
        if n == 0:
            assert list(kernels.batched_bfs(g.csr(), [], 2)) == []
            continue
        csr = g.csr()
        sources = list(range(n)) if n <= 8 else rng.sample(range(n), 10)
        for radius in RADII:
            got = list(kernels.batched_bfs(csr, sources, radius))
            # Content equality against the original dict/deque reference...
            assert got == [_dict_bounded_bfs(g, s, radius) for s in sources], (
                backend, n, radius,
            )
            # ...and iteration-order identity against the per-source kernel
            # (the kernels canonicalize to ascending (distance, vertex);
            # the dict reference emits per-level discovery order).
            per_source = [kernels.bounded_bfs(csr, s, radius) for s in sources]
            assert [list(d.items()) for d in got] == [
                list(d.items()) for d in per_source
            ], (backend, n, radius)


def test_batched_bfs_chunk_boundaries(backend):
    """A budget forcing 1-source chunks changes nothing but the batching."""
    g = random_graph(70, 4.0, 21)
    csr = g.csr()
    sources = list(range(0, 70, 3))
    for radius in (None, 2):
        reference = [kernels.bounded_bfs(csr, s, radius) for s in sources]
        for budget in (1, 70 * 8 + 1, 3 * 70 * 8, 10**9):
            got = list(kernels.batched_bfs(csr, sources, radius, memory_budget=budget))
            assert got == reference, (backend, radius, budget)


def test_batched_bfs_duplicate_and_unsorted_sources(backend):
    g = random_graph(50, 3.0, 22)
    csr = g.csr()
    sources = [17, 3, 17, 49, 0, 3]
    got = list(kernels.batched_bfs(csr, sources, 3))
    assert got == [kernels.bounded_bfs(csr, s, 3) for s in sources]


def test_batched_bfs_as_float(backend):
    g = random_graph(40, 3.0, 23)
    csr = g.csr()
    got = list(kernels.batched_bfs(csr, [0, 5, 11], 4, as_float=True))
    assert got == [kernels.bounded_bfs(csr, s, 4, as_float=True) for s in (0, 5, 11)]
    assert all(isinstance(v, float) for d in got for v in d.values())


def test_batched_bfs_validates_inputs(backend):
    g = Graph(3, [(0, 1)])
    with pytest.raises(ValueError):
        list(kernels.batched_bfs(g.csr(), [0, 9], 2))
    with pytest.raises(ValueError):
        list(kernels.batched_bfs(g.csr(), [0], -1))
    with pytest.raises(ValueError):
        list(kernels.batched_bfs(g.csr(), [0], 2, memory_budget=0))


def test_batched_bfs_disable_env(backend, batching_disabled_env):
    g = random_graph(60, 4.0, 24)
    csr = g.csr()
    sources = list(range(0, 60, 7))
    assert list(kernels.batched_bfs(csr, sources, 3)) == [
        kernels.bounded_bfs(csr, s, 3) for s in sources
    ]


def test_batch_chunk_size_policy():
    per_source = kernels._BATCH_BYTES_PER_VERTEX * 1000
    assert kernels.batch_chunk_size(1000, 100, memory_budget=per_source * 10) == 10
    assert kernels.batch_chunk_size(1000, 4, memory_budget=per_source * 10) == 4
    assert kernels.batch_chunk_size(1000, 100, memory_budget=1) == 1
    assert kernels.batch_chunk_size(0, 5, memory_budget=per_source) == 5
    with pytest.raises(ValueError):
        kernels.batch_chunk_size(10, 10, memory_budget=-5)


def test_batch_memory_budget_env(monkeypatch):
    g = random_graph(64, 3.0, 25)
    csr = g.csr()
    monkeypatch.setenv("REPRO_BATCH_MEMORY_BUDGET", "1")
    assert kernels.batch_chunk_size(64, 10) == 1
    reference = [kernels.bounded_bfs(csr, s, 2) for s in range(10)]
    assert list(kernels.batched_bfs(csr, range(10), 2)) == reference
    monkeypatch.setenv("REPRO_BATCH_MEMORY_BUDGET", "not-a-number")
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        assert kernels.batch_chunk_size(64, 10) >= 1
    assert any("REPRO_BATCH_MEMORY_BUDGET" in str(w.message) for w in caught)


# ----------------------------------------------------------------------
# multi_source_attributed
# ----------------------------------------------------------------------
def test_multi_source_attributed_equivalence(backend):
    rng = random.Random(200 + len(backend))
    for g in GRAPH_CASES:
        n = g.num_vertices
        if n == 0:
            assert multi_source_attributed(g, []) == {}
            continue
        for trial in range(4):
            sources = rng.sample(range(n), min(n, 1 + trial))
            for radius in (None, 0, 1, 3.5, float("inf")):
                got = multi_source_attributed(g, sources, radius)
                dist, origin = _dict_multi_source_bfs(g, sources, radius)
                assert got == {v: (origin[v], d) for v, d in dist.items()}, (
                    backend, n, sources, radius,
                )


def test_multi_source_attributed_tie_break(backend):
    # Even cycle: vertex 0 and 4 are equidistant from sources 2 and 6.
    g = Graph(8, [(i, (i + 1) % 8) for i in range(8)])
    attributed = multi_source_attributed(g, [6, 2])
    assert attributed[0] == (2, 2) and attributed[4] == (2, 2)
    assert attributed[2] == (2, 0) and attributed[6] == (6, 0)


def test_multi_source_attributed_empty_sources(backend):
    assert multi_source_attributed(Graph(4, [(0, 1)]), []) == {}


# ----------------------------------------------------------------------
# PhaseExplorer
# ----------------------------------------------------------------------
def test_phase_explorer_full_consumption(backend):
    g = random_graph(80, 4.0, 30)
    centers = sorted(random.Random(1).sample(range(80), 30))
    explorer = PhaseExplorer(g, centers, 3)
    for c in centers:
        got = explorer.explore(c)
        want = bounded_bfs(g, c, 3)
        assert got == want and list(got.items()) == list(want.items()), c
    assert explorer.prefetched == len(centers)


def test_phase_explorer_skipping_consumption(backend):
    g = random_graph(80, 4.0, 31)
    centers = sorted(random.Random(2).sample(range(80), 40))
    # Tiny budget: 1-source batches; skip most centers like Algorithm 1 does.
    explorer = PhaseExplorer(g, centers, 2, memory_budget=1)
    for i, c in enumerate(centers):
        if i % 5 == 0:
            assert explorer.explore(c) == bounded_bfs(g, c, 2)
    # With 1-source chunks nothing extra was computed for skipped centers.
    assert explorer.prefetched == len(centers[::5])


def test_phase_explorer_skip_heavy_never_speculates():
    """Sparse consumption: the explorer computes exactly what is asked."""
    g = random_graph(60, 3.0, 32)
    centers = list(range(60))
    explorer = PhaseExplorer(g, centers, 2)
    for c in (0, 20, 40, 59):  # survival far below 1/2
        explorer.explore(c)
    assert explorer.prefetched == explorer.consumed == 4


def test_phase_explorer_full_consumption_batches_geometrically():
    """Dense consumption of big balls: chunks grow, passes stay few."""
    g = random_graph(200, 4.0, 38)
    centers = list(range(200))
    explorer = PhaseExplorer(g, centers, None)  # unbounded: worth batching
    for c in centers:
        explorer.explore(c)
    assert explorer.prefetched == len(centers)  # nothing computed twice
    # observation window fetches singly, then chunks double: far fewer
    # passes than sources.
    assert explorer.batched_passes <= explorer.OBSERVATION_WINDOW + 10


def test_phase_explorer_full_consumption_has_zero_waste():
    """Consuming everything computes everything exactly once."""
    g = random_graph(400, 3.0, 39)
    explorer = PhaseExplorer(g, list(range(400)), 1)
    for c in range(400):
        assert explorer.explore(c) == bounded_bfs(g, c, 1)
    assert explorer.prefetched == explorer.consumed == 400


def test_phase_explorer_unbounded_radius(backend):
    g = disconnected_graph(33)
    centers = [0, 10, 30, 55]
    explorer = PhaseExplorer(g, centers, None)
    for c in centers:
        assert explorer.explore(c) == bounded_bfs(g, c, None)


def test_phase_explorer_radius_zero_and_float(backend):
    g = random_graph(30, 3.0, 34)
    ex0 = PhaseExplorer(g, range(30), 0)
    assert ex0.explore(7) == {7: 0}
    ex_float = PhaseExplorer(g, range(30), 2.9)
    assert ex_float.explore(3) == bounded_bfs(g, 3, 2)


def test_phase_explorer_reask_and_undeclared_source():
    g = random_graph(40, 3.0, 35)
    explorer = PhaseExplorer(g, [0, 5, 9], 3)
    first = explorer.explore(5)
    second = explorer.explore(5)  # ownership moved: recomputed, equal
    assert first == second and first is not second
    assert explorer.explore(20) == bounded_bfs(g, 20, 3)  # undeclared fallback
    bad = PhaseExplorer(g, [0, 99], 3)
    bad.explore(0)
    with pytest.raises(ValueError):  # invalid sources rejected at exploration
        bad.explore(99)


def test_phase_explorer_feeds_shared_cache():
    g = random_graph(50, 3.0, 36)
    centers = list(range(0, 50, 2))
    cache = ExplorationCache(g)
    with shared_explorations(cache):
        explorer = PhaseExplorer(g, centers, 3)
        results = {c: explorer.explore(c) for c in centers}
        assert cache.stats()["misses"] == len(centers)  # seeded by the batch
        # A second explorer is served entirely from the shared cache.
        again = PhaseExplorer(g, centers, 3)
        for c in centers:
            assert again.explore(c) == results[c]
        assert again.prefetched == 0
        assert cache.stats()["hits"] >= len(centers)


def test_phase_explorer_disable_matches_batched(backend, monkeypatch):
    g = random_graph(70, 4.0, 37)
    centers = sorted(random.Random(3).sample(range(70), 25))
    batched = PhaseExplorer(g, centers, 3)
    batched_results = [batched.explore(c) for c in centers]
    monkeypatch.setenv("REPRO_BATCH_DISABLE", "1")
    disabled = PhaseExplorer(g, centers, 3)
    disabled_results = [disabled.explore(c) for c in centers]
    assert disabled.batched_passes == 0
    assert batched_results == disabled_results
    assert [list(d.items()) for d in batched_results] == [
        list(d.items()) for d in disabled_results
    ]


# ----------------------------------------------------------------------
# Build transparency: batched == disabled, on every backend
# ----------------------------------------------------------------------
def _facade_snapshot(graph):
    from repro.api import BuildSpec, build

    specs = [
        BuildSpec(product="emulator", method="centralized", eps=0.1, kappa=3.0),
        BuildSpec(product="emulator", method="fast", eps=0.01, kappa=3.0, rho=0.45),
        BuildSpec(product="spanner", method="centralized", eps=0.01, kappa=3.0, rho=0.45),
        BuildSpec(product="spanner", method="fast", eps=0.01, kappa=3.0, rho=0.45),
    ]
    snap = []
    for spec in specs:
        result = build(graph, spec)
        raw = result.raw
        edges = sorted(
            raw.spanner.edges() if spec.product == "spanner" else raw.emulator.edges()
        )
        snap.append((spec.product, spec.method, edges, result.size))
    return snap


def _baseline_snapshot(graph):
    from repro.baselines.elkin_neiman import build_elkin_neiman_emulator
    from repro.baselines.elkin_peleg import build_elkin_peleg_emulator
    from repro.baselines.thorup_zwick import build_thorup_zwick_emulator

    ep = build_elkin_peleg_emulator(graph, eps=0.1, kappa=3.0)
    en = build_elkin_neiman_emulator(graph, eps=0.1, kappa=3.0, seed=7)
    tz = build_thorup_zwick_emulator(graph, kappa=3.0, seed=7)
    return [
        sorted(ep.emulator.edges()), ep.ground_forest_edges,
        ep.superclustering_edges, ep.interconnection_edges,
        sorted(en.emulator.edges()), en.superclustering_edges,
        en.interconnection_edges,
        sorted(tz.emulator.edges()), tz.superclustering_edges,
        tz.interconnection_edges,
    ]


def test_builds_identical_batched_vs_disabled(backend, monkeypatch):
    graph = random_graph(110, 4.0, 40)
    batched = _facade_snapshot(graph) + _baseline_snapshot(graph)
    monkeypatch.setenv("REPRO_BATCH_DISABLE", "1")
    disabled = _facade_snapshot(graph) + _baseline_snapshot(graph)
    assert batched == disabled


def test_builds_identical_under_tiny_batch_budget(monkeypatch):
    """Chunk boundaries cut through every phase: output must not move."""
    graph = random_graph(90, 4.0, 41)
    reference = _facade_snapshot(graph)
    monkeypatch.setenv("REPRO_BATCH_MEMORY_BUDGET", "1")
    assert _facade_snapshot(graph) == reference


def test_ruling_set_explorations_hit_cache():
    from repro.congest.ruling_sets import (
        bitwise_ruling_set,
        greedy_ruling_set,
        verify_ruling_set,
    )

    g = random_graph(60, 3.0, 42)
    candidates = list(range(0, 60, 2))
    cache = ExplorationCache(g)
    first = greedy_ruling_set(g, candidates, 3.0, cache=cache)
    computed = cache.stats()["misses"]
    second = greedy_ruling_set(g, candidates, 3.0, cache=cache)
    assert second.members == first.members
    assert cache.stats()["misses"] == computed  # all repeats served from cache
    assert cache.stats()["hits"] >= len(first.members)
    assert verify_ruling_set(g, candidates, first.members, 3.0, 2.0)

    bits = bitwise_ruling_set(g, candidates, 3.0, cache=cache)
    assert verify_ruling_set(g, candidates, bits.members, 3.0, bits.domination)


def test_bitwise_ruling_set_merge_explores_once_per_candidate(monkeypatch):
    """The merge sweep must not rerun one candidate's BFS per merged member."""
    from repro.congest import ruling_sets

    g = random_graph(60, 3.0, 43)
    candidates = list(range(0, 60, 2))
    calls = []
    real = ruling_sets.bounded_bfs

    def counting(graph, source, radius):
        calls.append(source)
        return real(graph, source, radius)

    monkeypatch.setattr(ruling_sets, "bounded_bfs", counting)
    ruling_sets.bitwise_ruling_set(g, candidates, 4.0)
    assert len(calls) == len(set(calls))  # one exploration per candidate


def test_local_workload_identical_lazy_vs_batched(monkeypatch):
    from repro.serve.workloads import generate_queries

    graph = random_graph(100, 4.0, 44)
    # 10 queries: lazy path; 300 queries: batched precompute path.
    for num in (10, 49, 50, 300):
        batched = generate_queries(graph, "local", num, seed=9)
        monkeypatch.setenv("REPRO_BATCH_DISABLE", "1")
        lazy = generate_queries(graph, "local", num, seed=9)
        monkeypatch.delenv("REPRO_BATCH_DISABLE")
        assert batched == lazy, num


def test_local_workload_identical_across_backends_and_disconnected():
    from repro.serve.workloads import generate_queries

    graph = disconnected_graph(45)  # isolated vertices take the fallback pair
    expected = None
    for name in BACKENDS:
        kernels.set_backend(name)
        try:
            stream = generate_queries(graph, "local", 250, seed=5)
        finally:
            kernels.set_backend("auto")
        if expected is None:
            expected = stream
        else:
            assert stream == expected, name
