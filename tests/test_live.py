"""Tests for live serving: mutations, hot swap, version tags (repro.serve.live).

The daemon tests bind port 0 (an ephemeral port) and run in-process on a
background thread — see CONTRIBUTING.md for the port discipline.  The
hot-swap tests gate the background rebuild on a ``threading.Event``
instead of sleeping, so they are deterministic.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.graphs import generators
from repro.graphs.graph import Graph
from repro.graphs.shortest_paths import bfs_distances
from repro.serve import (
    GraphMutation,
    LiveEngine,
    OracleDaemon,
    RemoteOracle,
    ServeSpec,
    load,
)
from repro.serve import load as serve_load


GRAPH = generators.connected_erdos_renyi(40, 0.15, seed=1)


def _gated_loader(gate: threading.Event, slow_from: int = 2):
    """A loader that blocks on ``gate`` from the ``slow_from``-th build on."""
    calls = []

    def loader(graph, spec):
        calls.append(None)
        if len(calls) >= slow_from:
            assert gate.wait(timeout=30.0), "test gate never opened"
        return serve_load(graph, spec)

    return loader


def _non_support_deletions(engine, count):
    """Graph edges whose deletion does not force a rebuild (not in the emulator)."""
    emulator = engine.raw_result.emulator
    picked = []
    for u, v in sorted(engine.graph.edges()):
        if not emulator.has_edge(u, v):
            picked.append((u, v))
        if len(picked) == count:
            break
    assert len(picked) == count, "workload graph too sparse for this test"
    return picked


def _co_clustered_missing_pair(engine):
    """A non-edge whose endpoints share a cluster (repairable insertion)."""
    graph = engine.graph
    for partition in engine.raw_result.partitions:
        for cluster in partition.clusters():
            members = sorted(cluster.members)
            for i, u in enumerate(members):
                for v in members[i + 1:]:
                    if not graph.has_edge(u, v):
                        return u, v
    return None


class TestGraphMutation:
    def test_edges_canonicalized_and_deduplicated(self):
        mutation = GraphMutation(inserts=[(5, 2), (2, 5), (1, 3)], deletes=[(9, 4)])
        assert mutation.inserts == ((2, 5), (1, 3))
        assert mutation.deletes == ((4, 9),)
        assert mutation.num_operations == 3
        assert len(mutation) == 3 and bool(mutation)

    def test_empty_mutation_is_falsy(self):
        assert not GraphMutation()

    @pytest.mark.parametrize("bad", [
        {"inserts": [(3, 3)]},                 # self-loop
        {"deletes": [(-1, 2)]},                # negative id
        {"inserts": [(0.5, 2)]},               # non-int
        {"inserts": [(True, 2)]},              # bool is not a vertex id
        {"deletes": [(1, 2, 3)]},              # not a pair
    ])
    def test_invalid_edges_rejected(self, bad):
        with pytest.raises(ValueError):
            GraphMutation(**bad)

    def test_json_round_trip(self):
        mutation = GraphMutation(inserts=[(7, 2)], deletes=[(0, 1), (3, 8)])
        assert GraphMutation.from_json(mutation.to_json()) == mutation
        assert mutation.to_dict() == {"inserts": [[2, 7]], "deletes": [[0, 1], [3, 8]]}

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown mutation keys"):
            GraphMutation.from_dict({"inserts": [], "edges": []})


class TestSpecAndLoad:
    def test_load_dispatches_to_live_engine(self):
        engine = load(GRAPH, ServeSpec(live=True, seed=0))
        try:
            assert isinstance(engine, LiveEngine)
            assert engine.spec.live
            assert "[live]" in engine.spec.describe()
        finally:
            engine.close()

    @pytest.mark.parametrize("value", [0, -3, True, 1.5])
    def test_invalid_rebuild_after_rejected(self, value):
        with pytest.raises(ValueError, match="live_rebuild_after"):
            ServeSpec(live=True, live_rebuild_after=value)

    def test_live_remote_backend_rejected(self):
        with pytest.raises(ValueError, match="live"):
            ServeSpec(live=True, backend="remote", options={"url": "http://x"})


class TestZeroMutationParity:
    def test_answers_identical_to_plain_engine(self):
        spec = ServeSpec(seed=0)
        plain = load(GRAPH, spec)
        with LiveEngine(GRAPH, spec.replace(live=True)) as live:
            n = GRAPH.num_vertices
            pairs = [(u, v) for u in range(0, n, 5) for v in range(n)]
            assert live.query_batch(pairs) == plain.query_batch(pairs)
            assert live.single_source(3) == plain.single_source(3)
            assert live.alpha == plain.alpha
            assert live.beta == plain.beta
            assert live.space_in_edges == plain.space_in_edges
        plain.close()

    def test_initial_version_tag(self):
        with LiveEngine(GRAPH, ServeSpec(live=True)) as live:
            answer = live.query_tagged(0, 7)
            assert (answer.version, answer.staleness, answer.guaranteed) == (0, 0, True)
            assert live.version.kind == "initial"
            assert live.version.watermark == 0


class TestSyncMutations:
    def test_noop_operations_are_skipped(self):
        with LiveEngine(GRAPH, ServeSpec(live=True, live_sync=True)) as live:
            edge = next(iter(sorted(GRAPH.edges())))
            receipt = live.mutate(inserts=[edge])       # already present
            assert (receipt.applied, receipt.skipped) == (0, 1)
            assert live.staleness == 0

    def test_out_of_range_vertex_rejected(self):
        with LiveEngine(GRAPH, ServeSpec(live=True)) as live:
            with pytest.raises(ValueError, match="out of range"):
                live.mutate(deletes=[(0, GRAPH.num_vertices)])

    def test_plain_deletion_leaves_guarantee_and_grows_staleness(self):
        with LiveEngine(GRAPH, ServeSpec(live=True, live_sync=True)) as live:
            (u, v), = _non_support_deletions(live, 1)
            receipt = live.mutate(deletes=[(u, v)])
            assert receipt.applied == 1 and not receipt.rebuilt and not receipt.forced
            assert receipt.staleness == 1
            assert not live.graph.has_edge(u, v)
            answer = live.query_tagged(u, v)
            assert answer.version == 0 and answer.staleness == 1 and answer.guaranteed

    def test_support_deletion_forces_rebuild(self):
        with LiveEngine(GRAPH, ServeSpec(live=True, live_sync=True)) as live:
            supported = [
                (u, v) for u, v, w in live.raw_result.emulator.edges()
                if w <= 1.0 and live.graph.has_edge(u, v)
            ]
            receipt = live.mutate(deletes=supported[:1])
            assert receipt.rebuilt and receipt.forced
            assert receipt.staleness == 0 and receipt.version == 1
            assert live.version.kind == "rebuild"

    def test_periodic_rebuild_after_threshold(self):
        spec = ServeSpec(live=True, live_sync=True, live_rebuild_after=2)
        with LiveEngine(GRAPH, spec) as live:
            first, second = _non_support_deletions(live, 2)
            assert not live.mutate(deletes=[first]).rebuilt
            receipt = live.mutate(deletes=[second])
            assert receipt.rebuilt and not receipt.forced
            assert live.staleness == 0

    def test_unabsorbed_insert_drops_guarantee_until_rebuild(self):
        # Repair off and no threshold: the insertion stays unabsorbed.
        spec = ServeSpec(live=True, live_repair=False)
        with LiveEngine(GRAPH, spec) as live:
            graph = live.graph
            non_edge = next(
                (u, v) for u in range(graph.num_vertices)
                for v in range(u + 1, graph.num_vertices) if not graph.has_edge(u, v)
            )
            receipt = live.mutate(inserts=[non_edge])
            assert receipt.forced and receipt.rebuild_scheduled
            assert not live.query_tagged(0, 1).guaranteed
            assert live.quiesce(timeout=60.0)
            answer = live.query_tagged(0, 1)
            assert answer.guaranteed and answer.staleness == 0

    def test_version_history_and_graph_at(self):
        spec = ServeSpec(live=True, live_sync=True, live_rebuild_after=1)
        with LiveEngine(GRAPH, spec) as live:
            deletions = _non_support_deletions(live, 3)
            for edge in deletions:
                live.mutate(deletes=[edge])
            versions = live.versions()
            assert [v.version for v in versions] == list(range(len(versions)))
            assert [v.watermark for v in versions] == sorted(v.watermark for v in versions)
            assert live.mutation_log() == [("delete", u, v) for u, v in deletions]
            # graph_at(0) is the pristine graph; graph_at(end) the current one.
            assert sorted(live.graph_at(0).edges()) == sorted(GRAPH.edges())
            assert sorted(live.graph_at(3).edges()) == sorted(live.graph.edges())
            with pytest.raises(ValueError):
                live.graph_at(99)

    def test_stats_live_section(self):
        with LiveEngine(GRAPH, ServeSpec(live=True, live_sync=True)) as live:
            live.mutate(deletes=_non_support_deletions(live, 1))
            live.query(0, 1)
            stats = live.stats()
            live_stats = stats["live"]
            assert live_stats["applied_mutations"] == 1
            assert live_stats["deletes_applied"] == 1
            assert live_stats["staleness"] == 1
            assert live_stats["guaranteed"] is True
            assert live_stats["versions"][0]["kind"] == "initial"
            assert stats["queries"] >= 1


class TestGuaranteeAgainstGraphVersions:
    def test_every_tagged_answer_meets_its_versions_guarantee(self):
        spec = ServeSpec(live=True, live_sync=True, live_rebuild_after=2)
        with LiveEngine(GRAPH, spec) as live:
            observed = []
            deletions = _non_support_deletions(live, 6)
            rng_pairs = [(u, v) for u in range(0, 40, 7) for v in range(0, 40, 3)]
            for edge in deletions:
                live.mutate(deletes=[edge])
                for u, v in rng_pairs:
                    answer = live.query_tagged(u, v)
                    if answer.guaranteed:
                        observed.append((u, v, answer))
            by_version = {v.version: v for v in live.versions()}
            graphs = {}
            for u, v, answer in observed:
                version = by_version[answer.version]
                if version.version not in graphs:
                    graphs[version.version] = live.graph_at(version.watermark)
                exact = bfs_distances(graphs[version.version], u).get(v, float("inf"))
                if exact == float("inf"):
                    assert answer.value == float("inf")
                else:
                    assert answer.value >= exact - 1e-9
                    assert answer.value <= version.alpha * exact + version.beta + 1e-9
            assert observed


class TestIncrementalRepair:
    def test_co_clustered_insert_is_repaired_in_place(self):
        with LiveEngine(GRAPH, ServeSpec(live=True, live_sync=True)) as live:
            pair = _co_clustered_missing_pair(live)
            if pair is None:
                pytest.skip("no co-clustered non-edge on this workload")
            base_beta = live.beta
            receipt = live.mutate(inserts=[pair])
            assert receipt.repaired and not receipt.rebuilt and not receipt.forced
            assert receipt.staleness == 0
            assert live.version.kind == "repair"
            assert live.version.repairs == 1
            assert live.beta == pytest.approx(2 * base_beta)
            # The repaired version absorbed the insertion: answers satisfy
            # the widened guarantee on the *current* graph.
            current = live.graph
            assert current.has_edge(*pair)
            exact = bfs_distances(current, pair[0])
            for target, dg in sorted(exact.items())[:20]:
                answer = live.query_tagged(pair[0], target)
                assert answer.guaranteed and answer.staleness == 0
                assert answer.value >= dg - 1e-9
                assert answer.value <= live.alpha * dg + live.beta + 1e-9

    def test_mixed_batch_falls_back_to_rebuild(self):
        with LiveEngine(GRAPH, ServeSpec(live=True, live_sync=True)) as live:
            pair = _co_clustered_missing_pair(live)
            if pair is None:
                pytest.skip("no co-clustered non-edge on this workload")
            edge = next(iter(sorted(live.graph.edges())))
            receipt = live.apply(GraphMutation(inserts=[pair], deletes=[edge]))
            assert receipt.rebuilt and receipt.forced and not receipt.repaired
            assert live.version.kind == "rebuild" and live.version.repairs == 0

    def test_repair_disabled_forces_rebuild(self):
        spec = ServeSpec(live=True, live_sync=True, live_repair=False)
        with LiveEngine(GRAPH, spec) as live:
            pair = _co_clustered_missing_pair(live)
            if pair is None:
                pytest.skip("no co-clustered non-edge on this workload")
            receipt = live.mutate(inserts=[pair])
            assert receipt.rebuilt and receipt.forced and not receipt.repaired


class TestAsyncRebuild:
    def test_queries_never_block_during_background_rebuild(self):
        gate = threading.Event()
        spec = ServeSpec(live=True, live_repair=False)
        live = LiveEngine(GRAPH, spec, loader=_gated_loader(gate))
        try:
            graph = live.graph
            non_edge = next(
                (u, v) for u in range(graph.num_vertices)
                for v in range(u + 1, graph.num_vertices) if not graph.has_edge(u, v)
            )
            receipt = live.mutate(inserts=[non_edge])
            assert receipt.rebuild_scheduled and not receipt.rebuilt
            # The rebuild is gated shut: every query must still answer,
            # on the old version, without waiting for the build.
            for _ in range(25):
                started = time.perf_counter()
                answer = live.query_tagged(0, 7)
                assert time.perf_counter() - started < 5.0
                assert answer.version == 0
                assert answer.staleness == 1 and not answer.guaranteed
            assert live.stats()["live"]["rebuild_pending"]
            gate.set()
            assert live.quiesce(timeout=60.0)
            answer = live.query_tagged(0, 7)
            assert answer.version == 1 and answer.staleness == 0 and answer.guaranteed
            assert live.versions()[-1].kind == "rebuild"
        finally:
            gate.set()
            live.close()

    def test_rebuild_failure_surfaces_in_quiesce_and_stats(self):
        calls = []

        def exploding_loader(graph, spec):
            calls.append(None)
            if len(calls) >= 2:
                raise RuntimeError("boom")
            return serve_load(graph, spec)

        live = LiveEngine(GRAPH, ServeSpec(live=True), loader=exploding_loader)
        try:
            live.mutate(deletes=_non_support_deletions(live, 1))
            with pytest.raises(RuntimeError, match="background rebuild failed"):
                live.quiesce(timeout=60.0)
        finally:
            live.close()


class TestDaemonHotSwap:
    """Satellite 4: hot-swap atomicity under concurrent wire clients."""

    def test_concurrent_wire_clients_survive_a_gated_rebuild(self):
        gate = threading.Event()
        spec = ServeSpec(live=True, seed=0, live_repair=False, live_rebuild_after=1)
        engine = LiveEngine(GRAPH, spec, coalesce=True, loader=_gated_loader(gate))
        stop = threading.Event()
        results = []
        errors = []

        def client(offset):
            try:
                probe = RemoteOracle(daemon.url)
                single_pair = (offset % 40, (offset + 7) % 40)
                pairs = [((offset + i) % 40, (offset + 3 * i + 1) % 40)
                         for i in range(4)]
                pairs = [(u, v) for u, v in pairs if u != v]
                while not stop.is_set():
                    single = probe.query_tagged(*single_pair)
                    batch = probe.query_batch_tagged(pairs)
                    results.append((single_pair, single, pairs, batch))
            except Exception as error:  # pragma: no cover - surfaced below
                errors.append(error)

        with OracleDaemon(port=0) as daemon:
            daemon.add_oracle("default", engine=engine)
            daemon.start()
            threads = [threading.Thread(target=client, args=(i * 5,), daemon=True)
                       for i in range(4)]
            try:
                for thread in threads:
                    thread.start()
                probe = RemoteOracle(daemon.url)
                deadline = time.monotonic() + 60.0
                while len(results) < 20 and time.monotonic() < deadline:
                    time.sleep(0.01)
                # Delete a non-support edge: live_rebuild_after=1 schedules
                # a background rebuild, which the gate holds shut while the
                # clients keep querying.
                emulator = engine.raw_result.emulator
                edge = next(
                    (u, v) for u, v in sorted(GRAPH.edges())
                    if not emulator.has_edge(u, v)
                )
                receipt = probe.mutate(deletes=[edge])
                assert receipt["applied"] == 1
                assert receipt["rebuild_scheduled"]
                while len(results) < 60 and time.monotonic() < deadline:
                    time.sleep(0.01)
                gate.set()
                assert engine.quiesce(timeout=60.0)
                while len(results) < 90 and time.monotonic() < deadline:
                    time.sleep(0.01)
            finally:
                stop.set()
                for thread in threads:
                    thread.join(timeout=30.0)
            assert not errors
            assert len(results) >= 90, "wire clients stalled during the rebuild"
            versions_seen = set()
            for _, single, pairs, batch in results:
                # No dropped or half-answered queries, no mixed-version batches.
                assert isinstance(single.value, float)
                assert len(batch.value) == len(pairs)
                versions_seen.add(single.version)
                versions_seen.add(batch.version)
            assert versions_seen == {0, 1}, "traffic never spanned the hot swap"
            # Post-hoc audit: every guaranteed tagged answer satisfies its
            # version's (alpha, beta) against exact BFS on the graph at
            # that version's watermark.
            by_version = {v.version: v for v in engine.versions()}
            graphs = {v: engine.graph_at(rec.watermark)
                      for v, rec in by_version.items()}
            assert graphs[1].num_edges == GRAPH.num_edges - 1
            exact_cache = {}

            def exact(version, source, target):
                key = (version, source)
                if key not in exact_cache:
                    exact_cache[key] = bfs_distances(graphs[version], source)
                return exact_cache[key].get(target, float("inf"))

            def check(pair, value, version_id):
                version = by_version[version_id]
                dg = exact(version_id, *pair)
                if dg == float("inf"):
                    assert value == float("inf")
                else:
                    assert value >= dg - 1e-9
                    assert value <= version.alpha * dg + version.beta + 1e-9

            audited = 0
            for single_pair, single, pairs, batch in results:
                if single.guaranteed:
                    check(single_pair, single.value, single.version)
                    audited += 1
                if batch.guaranteed:
                    for pair, value in zip(pairs, batch.value):
                        check(pair, value, batch.version)
                    audited += 1
            assert audited

    def test_daemon_serves_live_metadata_and_mutations(self):
        with OracleDaemon(port=0) as daemon:
            daemon.add_oracle("default", GRAPH, ServeSpec(live=True, seed=0))
            daemon.start()
            probe = RemoteOracle(daemon.url)
            assert probe.is_live
            health = daemon.healthz()["oracles"]["default"]
            assert health["live"] and health["version"] == 0
            edge = next(iter(sorted(GRAPH.edges())))
            receipt = probe.mutate(deletes=[edge], wait=True)
            assert receipt["applied"] == 1
            assert receipt["staleness"] == 0
            stats = probe.daemon_stats()["oracles"]["default"]["live"]
            assert stats["applied_mutations"] == 1
            assert stats["version"] >= 1

    def test_mutating_a_static_oracle_is_a_client_error(self):
        with OracleDaemon(port=0) as daemon:
            daemon.add_oracle("default", GRAPH, ServeSpec(seed=0))
            daemon.start()
            probe = RemoteOracle(daemon.url)
            assert not probe.is_live
            with pytest.raises(ValueError, match="not live"):
                probe.mutate(deletes=[(0, 1)])


class TestChurnSweep:
    def test_sweep_audits_tagged_answers_against_graph_versions(self):
        from repro.serve import ChurnSweepReport, run_churn_sweep

        with OracleDaemon(port=0) as daemon:
            daemon.add_oracle(
                "default", GRAPH,
                ServeSpec(live=True, seed=0, live_rebuild_after=2),
            )
            daemon.start()
            report = run_churn_sweep(
                daemon.url, GRAPH,
                num_queries=60, seed=3, concurrency=(2,),
                deletions_per_batch=1, batches_per_level=2, check_sample=40,
            )
        assert report.guarantee_ok, report.summary()
        assert report.guarantee_violations == 0
        assert report.answers_checked > 0
        assert report.mutations_applied == 2
        assert report.levels[0].mutations_applied == 2
        assert report.levels[0].guaranteed_fraction > 0
        # JSON round trip keeps the audit result.
        restored = ChurnSweepReport.from_json(report.to_json())
        assert restored == report

    def test_sweep_rejects_a_static_oracle(self):
        from repro.serve import run_churn_sweep

        with OracleDaemon(port=0) as daemon:
            daemon.add_oracle("default", GRAPH, ServeSpec(seed=0))
            daemon.start()
            with pytest.raises(ValueError, match="live"):
                run_churn_sweep(daemon.url, GRAPH, num_queries=10)


class TestEdgeStreamAsMutationSource:
    def test_stream_replays_as_insert_batches(self, star20):
        from repro.applications.streaming import EdgeStream

        stream = EdgeStream.from_graph(star20)
        passes_before = stream.passes
        batches = list(stream.mutation_batches(batch_size=7))
        assert stream.passes == passes_before + 1
        assert all(not batch.deletes for batch in batches)
        assert sum(len(batch.inserts) for batch in batches) == stream.num_edges
        assert all(len(batch.inserts) <= 7 for batch in batches)

    def test_batch_size_validated(self, star20):
        from repro.applications.streaming import EdgeStream

        stream = EdgeStream.from_graph(star20)
        with pytest.raises(ValueError):
            next(stream.mutation_batches(batch_size=0))

    def test_ingest_grows_the_served_graph(self, path10):
        from repro.applications.streaming import EdgeStream

        stream = EdgeStream.from_graph(path10)
        spec = ServeSpec(live=True, live_sync=True, live_repair=False)
        with LiveEngine(Graph(path10.num_vertices), spec) as live:
            applied = live.ingest(stream.mutation_batches(batch_size=4))
            assert applied == path10.num_edges
            assert sorted(live.graph.edges()) == sorted(path10.edges())
            assert live.quiesce(timeout=60.0)
            exact = bfs_distances(path10, 0)
            answer = live.query_tagged(0, 9)
            assert answer.guaranteed
            assert answer.value >= exact[9] - 1e-9
            assert answer.value <= live.alpha * exact[9] + live.beta + 1e-9
