"""Unit tests for :mod:`repro.faults` — rules, plans, env wiring."""

from __future__ import annotations

import json
import time

import pytest

from repro import obs
from repro.faults import (
    ENV_VAR,
    FaultInjected,
    FaultPlan,
    FaultRule,
    active_plan,
    clear_plan,
    corrupt_bytes,
    fault_plan,
    fault_point,
    install_plan,
    plan_from_env,
)


@pytest.fixture(autouse=True)
def no_installed_plan():
    """Each test starts with injection disabled and leaves it disabled."""
    clear_plan()
    previous = obs.set_enabled(True)
    obs.reset()
    yield
    clear_plan()
    obs.reset()
    obs.set_enabled(previous)


# ----------------------------------------------------------------------
# FaultRule
# ----------------------------------------------------------------------
def test_rule_validation_rejects_bad_fields():
    with pytest.raises(ValueError, match="non-empty site"):
        FaultRule(site="")
    with pytest.raises(ValueError, match="unknown fault action"):
        FaultRule(site="x", action="explode")
    with pytest.raises(ValueError, match="probability"):
        FaultRule(site="x", probability=1.5)
    with pytest.raises(ValueError, match="nth is 1-based"):
        FaultRule(site="x", nth=0)
    with pytest.raises(ValueError, match="times"):
        FaultRule(site="x", times=0)
    with pytest.raises(ValueError, match="delay_seconds"):
        FaultRule(site="x", delay_seconds=-1.0)


def test_rule_from_dict_rejects_unknown_keys():
    with pytest.raises(ValueError, match="unknown fault rule key"):
        FaultRule.from_dict({"site": "x", "acton": "raise"})
    with pytest.raises(ValueError, match="must be an object"):
        FaultRule.from_dict("live.rebuild")  # type: ignore[arg-type]


def test_rule_dict_round_trip():
    rule = FaultRule(site="sweep.task", action="raise", probability=0.5,
                     nth=3, times=2, message="boom",
                     where={"product": "spanner"})
    again = FaultRule.from_dict(rule.to_dict())
    assert again == rule
    # Defaults are omitted from the compact form.
    assert FaultRule(site="x").to_dict() == {"site": "x", "action": "raise"}


def test_rule_site_matching_exact_and_prefix_glob():
    exact = FaultRule(site="live.rebuild")
    assert exact.matches_site("live.rebuild")
    assert not exact.matches_site("live.rebuild.extra")
    glob = FaultRule(site="live.*")
    assert glob.matches_site("live.rebuild")
    assert glob.matches_site("live.repair")
    assert glob.matches_site("live")
    assert not glob.matches_site("liveness.check")
    assert not glob.matches_site("daemon.request")


def test_rule_where_matches_context_as_strings():
    rule = FaultRule(site="sweep.task", where={"product": "spanner", "index": 3})
    assert rule.matches_context({"product": "spanner", "index": 3, "extra": 1})
    assert rule.matches_context({"product": "spanner", "index": "3"})
    assert not rule.matches_context({"product": "emulator", "index": 3})
    assert not rule.matches_context({"product": "spanner"})


# ----------------------------------------------------------------------
# FaultPlan construction
# ----------------------------------------------------------------------
def test_plan_from_dict_object_and_bare_list():
    plan = FaultPlan.from_dict(
        {"seed": 7, "rules": [{"site": "a"}, {"site": "b", "action": "delay"}]}
    )
    assert plan.seed == 7
    assert [r.site for r in plan.rules] == ["a", "b"]
    bare = FaultPlan.from_dict([{"site": "a"}])
    assert bare.seed == 0 and len(bare.rules) == 1


def test_plan_from_dict_rejects_unknown_keys_and_scalars():
    with pytest.raises(ValueError, match="unknown fault plan key"):
        FaultPlan.from_dict({"seed": 1, "rule": []})
    with pytest.raises(ValueError, match="object or a rule list"):
        FaultPlan.from_dict("not-a-plan")  # type: ignore[arg-type]


def test_plan_json_round_trip(tmp_path):
    plan = FaultPlan.from_json(
        '{"seed": 3, "rules": [{"site": "live.rebuild", "times": 1}]}'
    )
    assert FaultPlan.from_dict(plan.to_dict()).to_dict() == plan.to_dict()
    path = tmp_path / "plan.json"
    path.write_text(json.dumps(plan.to_dict()))
    assert FaultPlan.from_file(path).to_dict() == plan.to_dict()
    with pytest.raises(ValueError, match="not valid JSON"):
        FaultPlan.from_json("{nope")


# ----------------------------------------------------------------------
# fault_point semantics
# ----------------------------------------------------------------------
def test_fault_point_is_noop_without_plan():
    assert active_plan() is None
    fault_point("anything.goes", key="value")  # must not raise
    assert corrupt_bytes("anything.goes", b"payload") == b"payload"


def test_raise_rule_raises_fault_injected_with_site():
    with fault_plan({"rules": [{"site": "live.rebuild"}]}):
        with pytest.raises(FaultInjected) as excinfo:
            fault_point("live.rebuild")
        assert excinfo.value.site == "live.rebuild"
        fault_point("live.other")  # non-matching site unaffected


def test_raise_rule_custom_message():
    with fault_plan({"rules": [{"site": "x", "message": "kaboom"}]}):
        with pytest.raises(FaultInjected, match="kaboom"):
            fault_point("x")


def test_delay_rule_sleeps_then_continues():
    with fault_plan({"rules": [{"site": "slow", "action": "delay",
                                "delay_seconds": 0.05}]}):
        start = time.monotonic()
        fault_point("slow")  # must not raise
        assert time.monotonic() - start >= 0.04


def test_nth_rule_triggers_only_on_nth_hit():
    with fault_plan({"rules": [{"site": "x", "nth": 3}]}) as plan:
        fault_point("x")
        fault_point("x")
        with pytest.raises(FaultInjected):
            fault_point("x")
        fault_point("x")  # 4th hit: nth already passed
        assert plan.stats()["x"] == {"hits": 4, "injected": 1}


def test_times_caps_total_injections():
    with fault_plan({"rules": [{"site": "x", "times": 2}]}) as plan:
        for _ in range(2):
            with pytest.raises(FaultInjected):
                fault_point("x")
        fault_point("x")
        fault_point("x")
        assert plan.stats()["x"] == {"hits": 4, "injected": 2}


def test_probability_is_seeded_and_deterministic():
    spec = {"seed": 42, "rules": [{"site": "x", "probability": 0.5}]}

    def pattern():
        outcomes = []
        with fault_plan(dict(spec)):
            for _ in range(50):
                try:
                    fault_point("x")
                    outcomes.append(False)
                except FaultInjected:
                    outcomes.append(True)
        return outcomes

    first, second = pattern(), pattern()
    assert first == second
    assert 5 < sum(first) < 45  # actually probabilistic, not all-or-nothing

    spec["seed"] = 43
    assert pattern() != first  # a different seed reshuffles the pattern


def test_where_scopes_injection_to_matching_context():
    rules = [{"site": "sweep.task", "where": {"product": "spanner"}}]
    with fault_plan({"rules": rules}):
        fault_point("sweep.task", product="emulator")
        with pytest.raises(FaultInjected):
            fault_point("sweep.task", product="spanner")


def test_corrupt_rule_flips_a_middle_byte_only_via_corrupt_bytes():
    with fault_plan({"rules": [{"site": "io.bytes", "action": "corrupt"}]}):
        fault_point("io.bytes")  # corrupt rules never raise at fault points
        data = bytes(range(10))
        out = corrupt_bytes("io.bytes", data)
        assert out != data and len(out) == len(data)
        assert out[5] == data[5] ^ 0xFF
        assert sum(a != b for a, b in zip(out, data)) == 1
        assert corrupt_bytes("io.bytes", b"") == b""  # empty payload untouched
        assert corrupt_bytes("io.other", data) == data


def test_injections_count_in_obs_metrics():
    with fault_plan({"rules": [{"site": "x", "times": 1},
                               {"site": "y", "action": "delay"}]}):
        with pytest.raises(FaultInjected):
            fault_point("x")
        fault_point("y")
    assert obs.get_metric("repro_faults_injected_total", site="x") == 1
    assert obs.get_metric("repro_faults_injected_total", site="y") == 1


# ----------------------------------------------------------------------
# Installation and the environment hook
# ----------------------------------------------------------------------
def test_install_clear_and_context_manager_restore():
    outer = FaultPlan([FaultRule(site="outer")])
    install_plan(outer)
    assert active_plan() is outer
    with fault_plan({"rules": [{"site": "inner"}]}) as inner:
        assert active_plan() is inner
        with fault_plan(None):
            assert active_plan() is None
        assert active_plan() is inner
    assert active_plan() is outer
    clear_plan()
    assert active_plan() is None


def test_fault_plan_accepts_json_string():
    with fault_plan('{"rules": [{"site": "x"}]}'):
        with pytest.raises(FaultInjected):
            fault_point("x")


def test_plan_from_env_inline_at_file_and_bare_path(tmp_path, monkeypatch):
    assert plan_from_env("") is None
    assert plan_from_env("0") is None
    inline = plan_from_env('{"seed": 5, "rules": [{"site": "x"}]}')
    assert inline is not None and inline.seed == 5

    path = tmp_path / "plan.json"
    path.write_text('{"rules": [{"site": "y"}]}')
    for value in (f"@{path}", str(path)):
        plan = plan_from_env(value)
        assert plan is not None and plan.rules[0].site == "y"

    monkeypatch.setenv(ENV_VAR, '{"rules": [{"site": "z"}]}')
    from_env = plan_from_env()
    assert from_env is not None and from_env.rules[0].site == "z"

    with pytest.raises(ValueError):
        plan_from_env("{broken")
    with pytest.raises(OSError):
        plan_from_env(str(tmp_path / "missing.json"))


# ----------------------------------------------------------------------
# Result-cache fault points (cache.read / cache.write)
# ----------------------------------------------------------------------
class TestResultCacheFaults:
    """Injected disk rot inside :class:`repro.api.cache.ResultCache`.

    The contract under faults is evict-and-rebuild: a read-side failure
    (exception or corrupted bytes) evicts the entry and reports a miss,
    a write-side failure degrades to "not stored" — callers rebuild,
    never crash, and a later healthy put/get round-trips again.
    """

    def _cache_and_entry(self, tmp_path):
        from repro.api import BuildSpec, build
        from repro.api.cache import ResultCache
        from repro.graphs import generators

        graph = generators.grid_graph(3, 3)
        spec = BuildSpec(product="emulator", method="centralized")
        cache = ResultCache(tmp_path / "cache")
        key = cache.key(graph.content_hash(), spec)
        result = build(graph, spec)
        return cache, key, result

    def test_read_fault_evicts_the_entry_and_reports_a_miss(self, tmp_path):
        cache, key, result = self._cache_and_entry(tmp_path)
        assert cache.put(key, result)
        plan = {"rules": [{"site": "cache.read", "action": "raise",
                           "times": 1}]}
        with fault_plan(plan):
            assert cache.get(key) is None
        assert cache.evictions == 1
        assert not cache.path(key).exists()
        # Rebuild lane: a fresh put round-trips again.
        assert cache.put(key, result)
        assert cache.get(key) is not None

    def test_read_corruption_lands_in_the_same_evict_lane(self, tmp_path):
        cache, key, result = self._cache_and_entry(tmp_path)
        assert cache.put(key, result)
        plan = {"rules": [{"site": "cache.read", "action": "corrupt",
                           "times": 1}]}
        with fault_plan(plan):
            assert cache.get(key) is None
        assert cache.evictions == 1
        assert not cache.path(key).exists()

    def test_write_fault_degrades_to_not_stored(self, tmp_path):
        cache, key, result = self._cache_and_entry(tmp_path)
        plan = {"rules": [{"site": "cache.write", "action": "raise",
                           "times": 1}]}
        with fault_plan(plan):
            assert cache.put(key, result) is False
            assert cache.get(key) is None  # nothing half-written
            assert cache.put(key, result) is True
            assert cache.get(key) is not None

    def test_write_corruption_rots_the_entry_for_the_next_reader(self, tmp_path):
        cache, key, result = self._cache_and_entry(tmp_path)
        plan = {"rules": [{"site": "cache.write", "action": "corrupt",
                           "times": 1}]}
        with fault_plan(plan):
            assert cache.put(key, result) is True  # the write "succeeds"
        # The rot is discovered on read: evict, miss, rebuild.
        assert cache.get(key) is None
        assert cache.evictions == 1
        assert cache.put(key, result)
        assert cache.get(key) is not None

    def test_sweep_completes_when_every_cache_write_fails(self, tmp_path):
        from repro.api import GridSweep, run_sweep
        from repro.graphs import generators

        grid = generators.grid_graph(3, 3)
        sweep = GridSweep(products=("emulator",), methods=("centralized",))
        baseline = run_sweep({"grid": grid}, sweep)
        plan = {"rules": [{"site": "cache.write", "action": "raise"}]}
        with fault_plan(plan):
            records = run_sweep({"grid": grid}, sweep,
                                cache=str(tmp_path / "cache"))
        assert [frozenset(r.result.edges) for r in records] == \
            [frozenset(r.result.edges) for r in baseline]
        # Caching degraded to a no-op: the second run misses again.
        with fault_plan(plan):
            again = run_sweep({"grid": grid}, sweep,
                              cache=str(tmp_path / "cache"))
        assert not any(r.cache_hit for r in again)
