"""Unit tests for edge-list I/O."""

from __future__ import annotations

import pytest

from repro.graphs import generators, io
from repro.graphs.graph import Graph
from repro.graphs.weighted_graph import WeightedGraph


class TestUnweightedIo:
    def test_roundtrip(self, tmp_path):
        g = generators.connected_erdos_renyi(30, 0.1, seed=1)
        path = tmp_path / "graph.txt"
        io.write_edge_list(g, path)
        back = io.read_edge_list(path)
        assert back == g

    def test_empty_graph_roundtrip(self, tmp_path):
        g = Graph(5)
        path = tmp_path / "empty.txt"
        io.write_edge_list(g, path)
        back = io.read_edge_list(path)
        assert back.num_vertices == 5
        assert back.num_edges == 0

    def test_comments_and_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("3 1\n\n# comment\n0 2\n")
        g = io.read_edge_list(path)
        assert g.has_edge(0, 2)

    def test_malformed_header(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("3\n0 1\n")
        with pytest.raises(ValueError):
            io.read_edge_list(path)

    def test_malformed_edge_line(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("3 1\n0 1 2\n")
        with pytest.raises(ValueError):
            io.read_edge_list(path)

    def test_edge_count_mismatch(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("3 2\n0 1\n")
        with pytest.raises(ValueError):
            io.read_edge_list(path)


class TestWeightedIo:
    def test_roundtrip(self, tmp_path):
        g = WeightedGraph(4, [(0, 1, 2.0), (1, 3, 5.5)])
        path = tmp_path / "weighted.txt"
        io.write_weighted_edge_list(g, path)
        back = io.read_weighted_edge_list(path)
        assert back.num_edges == 2
        assert back.weight(0, 1) == 2.0
        assert back.weight(1, 3) == 5.5

    def test_integer_weights_written_as_ints(self, tmp_path):
        g = WeightedGraph(2, [(0, 1, 3.0)])
        path = tmp_path / "w.txt"
        io.write_weighted_edge_list(g, path)
        assert "0 1 3\n" in path.read_text()

    def test_malformed_weighted_line(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("2 1\n0 1\n")
        with pytest.raises(ValueError):
            io.read_weighted_edge_list(path)

    def test_weighted_count_mismatch(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("2 3\n0 1 1.0\n")
        with pytest.raises(ValueError):
            io.read_weighted_edge_list(path)

    def test_emulator_roundtrip(self, tmp_path, small_random_graph):
        from repro.core.emulator import build_emulator

        result = build_emulator(small_random_graph, eps=0.1, kappa=4)
        path = tmp_path / "emulator.txt"
        io.write_weighted_edge_list(result.emulator, path)
        back = io.read_weighted_edge_list(path)
        assert back.num_edges == result.emulator.num_edges
        assert back.total_weight() == pytest.approx(result.emulator.total_weight())
