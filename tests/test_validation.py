"""Tests for the emulator/spanner validators and metrics."""

from __future__ import annotations

import pytest

from repro.analysis.metrics import size_report, sparsity_ratio, stretch_distribution
from repro.analysis.sampling import sample_vertex_pairs
from repro.analysis.reporting import format_markdown_table, format_table
from repro.analysis.validation import (
    StretchReport,
    verify_emulator,
    verify_no_shortening,
    verify_spanner,
)
from repro.graphs.graph import Graph
from repro.graphs.weighted_graph import WeightedGraph


class TestStretchReport:
    def test_record_valid_pair(self):
        report = StretchReport(alpha=2.0, beta=1.0)
        report.record(0, 1, 2.0, 3.0)
        assert report.valid
        assert report.max_multiplicative_stretch == 1.5
        assert report.max_additive_error == 1.0

    def test_record_violation(self):
        report = StretchReport(alpha=1.0, beta=0.0)
        report.record(0, 1, 2.0, 3.0)
        assert not report.valid
        assert report.violations

    def test_record_shortening_violation(self):
        report = StretchReport(alpha=10.0, beta=10.0)
        report.record(0, 1, 5.0, 3.0)
        assert report.shortening_violations

    def test_excess_over_guarantee(self):
        report = StretchReport(alpha=1.0, beta=0.0)
        report.record(0, 1, 1.0, 4.0)
        assert report.max_excess_over_guarantee == pytest.approx(3.0)


class TestVerifyEmulator:
    def test_identity_emulator_is_valid(self, small_random_graph):
        h = WeightedGraph(small_random_graph.num_vertices)
        for u, v in small_random_graph.edges():
            h.add_edge(u, v, 1.0)
        report = verify_emulator(small_random_graph, h, 1.0, 0.0)
        assert report.valid
        assert report.max_multiplicative_stretch == 1.0

    def test_missing_edges_detected(self, path10):
        h = WeightedGraph(10)  # empty emulator: infinite distances
        report = verify_emulator(path10, h, 1.0, 5.0)
        assert not report.valid

    def test_shortening_detected(self, path10):
        h = WeightedGraph(10)
        for u, v in path10.edges():
            h.add_edge(u, v, 1.0)
        h.add_edge(0, 9, 1.0)  # illegally short edge
        report = verify_emulator(path10, h, 10.0, 100.0)
        assert report.shortening_violations

    def test_sampled_mode(self, random_graph):
        from repro.core.emulator import build_emulator

        result = build_emulator(random_graph, eps=0.1, kappa=4)
        report = verify_emulator(random_graph, result.emulator, result.alpha, result.beta,
                                 sample_pairs=50)
        assert report.valid
        assert report.pairs_checked <= 50

    def test_vertex_count_mismatch(self, path10):
        with pytest.raises(ValueError):
            verify_emulator(path10, WeightedGraph(5), 1.0, 1.0)

    def test_verify_no_shortening_helper(self, path10):
        h = WeightedGraph(10)
        for u, v in path10.edges():
            h.add_edge(u, v, 2.0)
        assert verify_no_shortening(path10, h, sample_pairs=None)


class TestVerifySpanner:
    def test_full_graph_is_valid_spanner(self, small_random_graph):
        report = verify_spanner(small_random_graph, small_random_graph.copy(), 1.0, 0.0)
        assert report.valid

    def test_non_subgraph_rejected(self, path10):
        fake = Graph(10, [(0, 9)])
        with pytest.raises(AssertionError):
            verify_spanner(path10, fake, 10.0, 10.0)

    def test_forest_spanner_stretch(self, small_random_graph):
        from repro.baselines.multiplicative import bfs_tree_spanner

        forest = bfs_tree_spanner(small_random_graph)
        # A BFS forest has stretch at most the diameter: use a generous bound.
        report = verify_spanner(small_random_graph, forest, 1.0,
                                2 * small_random_graph.num_vertices)
        assert report.valid


class TestMetrics:
    def test_size_report(self, small_random_graph):
        from repro.core.emulator import build_emulator

        result = build_emulator(small_random_graph, eps=0.1, kappa=4)
        report = size_report(result.emulator, kappa=4)
        assert report.within_bound
        assert report.ratio_to_bound <= 1.0
        assert report.extra_over_n == result.num_edges - 40

    def test_sparsity_ratio(self, clique8):
        from repro.baselines.multiplicative import bfs_tree_spanner

        forest = bfs_tree_spanner(clique8)
        ratio = sparsity_ratio(forest, clique8)
        assert ratio == pytest.approx(7 / 28)

    def test_sparsity_ratio_empty_graph(self):
        assert sparsity_ratio(Graph(3), Graph(3)) == 0.0

    def test_stretch_distribution(self, small_random_graph):
        from repro.core.emulator import build_emulator

        result = build_emulator(small_random_graph, eps=0.1, kappa=4)
        dist = stretch_distribution(small_random_graph, result.emulator)
        assert dist["pairs"] > 0
        assert dist["max_multiplicative"] >= dist["mean_multiplicative"] >= 1.0
        assert dist["max_additive"] >= dist["p95_additive"] >= 0.0

    def test_stretch_distribution_empty(self):
        dist = stretch_distribution(Graph(3), WeightedGraph(3))
        assert dist["pairs"] == 0


class TestSampling:
    def test_sample_count(self, random_graph):
        pairs = sample_vertex_pairs(random_graph, 30, seed=1)
        assert len(pairs) == 30
        assert all(u < v for u, v in pairs)
        assert len(set(pairs)) == 30

    def test_sample_all_when_requested_too_many(self, path10):
        pairs = sample_vertex_pairs(path10, 1000)
        assert len(pairs) == 45

    def test_sample_deterministic(self, random_graph):
        assert sample_vertex_pairs(random_graph, 20, seed=5) == sample_vertex_pairs(
            random_graph, 20, seed=5
        )

    def test_sample_trivial_graphs(self):
        assert sample_vertex_pairs(Graph(1), 5) == []
        assert sample_vertex_pairs(Graph(10), 0) == []


class TestReporting:
    def test_format_table_alignment(self):
        table = format_table(["a", "bb"], [[1, 2.5], ["x", 3]], title="T")
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_format_table_float_rendering(self):
        table = format_table(["v"], [[0.00001], [123456.0], [2.0]])
        assert "1.000e-05" in table
        assert "123456" in table

    def test_format_markdown_table(self):
        md = format_markdown_table(["x", "y"], [[1, 2]])
        assert md.splitlines()[0] == "| x | y |"
        assert "| 1 | 2 |" in md
