"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.graphs import generators
from repro.graphs.graph import Graph


@pytest.fixture
def path10() -> Graph:
    """A path on 10 vertices."""
    return generators.path_graph(10)


@pytest.fixture
def cycle12() -> Graph:
    """A cycle on 12 vertices."""
    return generators.cycle_graph(12)


@pytest.fixture
def star20() -> Graph:
    """A star with 19 leaves."""
    return generators.star_graph(20)


@pytest.fixture
def grid6x6() -> Graph:
    """A 6x6 grid."""
    return generators.grid_graph(6, 6)


@pytest.fixture
def random_graph() -> Graph:
    """A connected sparse random graph on 80 vertices (seeded)."""
    return generators.connected_erdos_renyi(80, 0.06, seed=42)


@pytest.fixture
def small_random_graph() -> Graph:
    """A connected sparse random graph on 40 vertices (seeded)."""
    return generators.connected_erdos_renyi(40, 0.1, seed=7)


@pytest.fixture
def clique8() -> Graph:
    """A clique on 8 vertices."""
    return generators.complete_graph(8)


@pytest.fixture
def disconnected_graph() -> Graph:
    """Two disjoint paths (tests behaviour on disconnected inputs)."""
    g = Graph(10)
    for i in range(4):
        g.add_edge(i, i + 1)
    for i in range(5, 9):
        g.add_edge(i, i + 1)
    return g
