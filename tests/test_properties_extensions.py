"""Property-based tests (hypothesis) for the hopset, streaming and analysis layers."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.statistics import loglog_slope, percentile, summarize
from repro.applications.streaming import EdgeStream, streaming_greedy_spanner
from repro.baselines.baswana_sen import baswana_sen_spanner
from repro.congest.source_detection import source_detection
from repro.graphs import generators
from repro.graphs.graph import Graph
from repro.graphs.shortest_paths import bfs_distances
from repro.graphs.weighted_graph import WeightedGraph
from repro.hopsets import hop_limited_distances, union_with_graph


# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------
@st.composite
def small_connected_graphs(draw, max_n: int = 24) -> Graph:
    """Connected random graphs with 2..max_n vertices."""
    n = draw(st.integers(min_value=2, max_value=max_n))
    seed = draw(st.integers(min_value=0, max_value=2 ** 16))
    p = draw(st.floats(min_value=0.05, max_value=0.4))
    return generators.connected_erdos_renyi(n, p, seed=seed)


@st.composite
def weighted_overlays(draw, graph: Graph) -> WeightedGraph:
    """Overlay graphs whose edge weights never undershoot the graph distance."""
    overlay = WeightedGraph(graph.num_vertices)
    n = graph.num_vertices
    num_extra = draw(st.integers(min_value=0, max_value=min(10, n * (n - 1) // 2)))
    for _ in range(num_extra):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 1))
        if u == v:
            continue
        exact = bfs_distances(graph, u).get(v)
        if exact is None:
            continue
        slack = draw(st.floats(min_value=0.0, max_value=3.0))
        overlay.add_edge(u, v, exact + slack)
    return overlay


# ---------------------------------------------------------------------------
# Hop-limited distances
# ---------------------------------------------------------------------------
class TestHopLimitedProperties:
    @given(data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_monotone_in_hop_budget(self, data):
        graph = data.draw(small_connected_graphs())
        union = union_with_graph(graph)
        source = data.draw(st.integers(min_value=0, max_value=graph.num_vertices - 1))
        budget_small = data.draw(st.integers(min_value=0, max_value=5))
        budget_large = budget_small + data.draw(st.integers(min_value=0, max_value=5))
        small = hop_limited_distances(union, source, budget_small)
        large = hop_limited_distances(union, source, budget_large)
        for v, d in small.items():
            assert large[v] <= d + 1e-9

    @given(data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_never_undershoots_graph_distance_with_valid_overlay(self, data):
        graph = data.draw(small_connected_graphs())
        overlay = data.draw(weighted_overlays(graph))
        union = union_with_graph(graph, overlay)
        source = data.draw(st.integers(min_value=0, max_value=graph.num_vertices - 1))
        budget = data.draw(st.integers(min_value=0, max_value=graph.num_vertices))
        exact = bfs_distances(graph, source)
        limited = hop_limited_distances(union, source, budget)
        for v, d in limited.items():
            assert d >= exact[v] - 1e-9

    @given(data=st.data())
    @settings(max_examples=20, deadline=None)
    def test_full_budget_matches_dijkstra(self, data):
        graph = data.draw(small_connected_graphs())
        overlay = data.draw(weighted_overlays(graph))
        union = union_with_graph(graph, overlay)
        source = data.draw(st.integers(min_value=0, max_value=graph.num_vertices - 1))
        limited = hop_limited_distances(union, source, graph.num_vertices)
        exact = union.dijkstra(source)
        # hop_limited_distances only relaxes improvements larger than its
        # 1e-12 float-noise guard, so compare with a tolerance rather than
        # exact equality (an overlay weight within 1e-12 of the true
        # distance is otherwise a falsifying example).
        assert set(limited) == set(exact)
        for v, d in limited.items():
            assert d == pytest.approx(exact[v], abs=1e-9)


# ---------------------------------------------------------------------------
# Streaming and spanner baselines
# ---------------------------------------------------------------------------
class TestStreamingProperties:
    @given(data=st.data())
    @settings(max_examples=15, deadline=None)
    def test_streaming_spanner_is_subgraph_and_respects_stretch(self, data):
        graph = data.draw(small_connected_graphs(max_n=18))
        k = data.draw(st.integers(min_value=1, max_value=3))
        spanner, stats = streaming_greedy_spanner(EdgeStream.from_graph(graph), k=k)
        assert stats.passes == 1
        for u, v in spanner.edges():
            assert graph.has_edge(u, v)
        bound = 2 * k - 1
        for source in graph.vertices():
            exact = bfs_distances(graph, source)
            in_spanner = bfs_distances(spanner, source)
            for target, dg in exact.items():
                assert in_spanner.get(target, math.inf) <= bound * dg

    @given(data=st.data())
    @settings(max_examples=10, deadline=None)
    def test_baswana_sen_respects_stretch(self, data):
        graph = data.draw(small_connected_graphs(max_n=16))
        k = data.draw(st.integers(min_value=1, max_value=3))
        seed = data.draw(st.integers(min_value=0, max_value=1000))
        spanner = baswana_sen_spanner(graph, k=k, seed=seed)
        bound = 2 * k - 1
        for source in graph.vertices():
            exact = bfs_distances(graph, source)
            in_spanner = bfs_distances(spanner, source)
            for target, dg in exact.items():
                assert in_spanner.get(target, math.inf) <= bound * dg


# ---------------------------------------------------------------------------
# Source detection
# ---------------------------------------------------------------------------
class TestSourceDetectionProperties:
    @given(data=st.data())
    @settings(max_examples=20, deadline=None)
    def test_detection_matches_exact_k_nearest(self, data):
        graph = data.draw(small_connected_graphs(max_n=18))
        n = graph.num_vertices
        num_sources = data.draw(st.integers(min_value=1, max_value=min(5, n)))
        sources = sorted(
            data.draw(
                st.sets(st.integers(min_value=0, max_value=n - 1),
                        min_size=num_sources, max_size=num_sources)
            )
        )
        k = data.draw(st.integers(min_value=1, max_value=4))
        d = data.draw(st.integers(min_value=1, max_value=n))
        result = source_detection(graph, sources, distance_bound=d, k=k)
        for v in graph.vertices():
            expected = sorted(
                (dist, s)
                for s in sources
                for dist in [bfs_distances(graph, s).get(v)]
                if dist is not None and dist <= d
            )[:k]
            assert result.detected[v] == expected


# ---------------------------------------------------------------------------
# Statistics helpers
# ---------------------------------------------------------------------------
class TestStatisticsProperties:
    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_summary_bounds(self, values):
        summary = summarize(values)
        assert summary.minimum <= summary.median <= summary.maximum
        assert summary.minimum <= summary.mean <= summary.maximum
        assert summary.minimum <= summary.p95 <= summary.maximum
        assert summary.std >= 0

    @given(
        st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=50),
        st.floats(min_value=0, max_value=100),
    )
    @settings(max_examples=50, deadline=None)
    def test_percentile_within_range(self, values, q):
        p = percentile(values, q)
        assert min(values) <= p <= max(values)

    @given(
        st.floats(min_value=0.1, max_value=3.0),
        st.floats(min_value=0.5, max_value=100.0),
        st.lists(st.integers(min_value=2, max_value=10000), min_size=2, max_size=20, unique=True),
    )
    @settings(max_examples=50, deadline=None)
    def test_loglog_slope_recovers_power_laws(self, exponent, constant, xs):
        ys = [constant * (x ** exponent) for x in xs]
        slope, intercept = loglog_slope(xs, ys)
        assert slope == pytest.approx(exponent, rel=1e-6, abs=1e-6)
        assert math.exp(intercept) == pytest.approx(constant, rel=1e-5)
