"""Tests for the experiment drivers (E1-E7) and workloads."""

from __future__ import annotations

import pytest

from repro.experiments.baselines_experiment import format_baselines_table, run_baselines_experiment
from repro.experiments.congest_experiment import format_congest_table, run_congest_experiment
from repro.experiments.runner import available_experiments, run_experiment
from repro.experiments.runtime_experiment import format_runtime_table, run_runtime_experiment
from repro.experiments.size_experiment import format_size_table, run_size_experiment
from repro.experiments.spanner_experiment import format_spanner_table, run_spanner_experiment
from repro.experiments.stretch_experiment import format_stretch_table, run_stretch_experiment
from repro.experiments.ultrasparse_experiment import (
    format_ultrasparse_table,
    run_ultrasparse_experiment,
)
from repro.experiments.workloads import (
    Workload,
    scaling_workloads,
    standard_workloads,
    workload_by_name,
)


@pytest.fixture(scope="module")
def tiny_workloads():
    """Very small workloads so the experiment drivers stay fast in CI."""
    return [workload_by_name("erdos-renyi", 48, seed=1), workload_by_name("grid", 49)]


class TestWorkloads:
    def test_standard_workloads_families(self):
        workloads = standard_workloads(n=64)
        names = {w.name.rsplit("-n", 1)[0] for w in workloads}
        assert "erdos-renyi" in names
        assert "grid" in names
        assert all(isinstance(w, Workload) for w in workloads)

    def test_scaling_workloads_sizes_increase(self):
        workloads = scaling_workloads(sizes=[32, 64])
        assert workloads[0].n < workloads[1].n

    def test_workload_properties(self):
        w = workload_by_name("grid", 49)
        assert w.n == 49
        assert w.m == w.graph.num_edges

    def test_unknown_family(self):
        with pytest.raises(ValueError):
            workload_by_name("nonsense", 10)


class TestSizeExperiment:
    def test_all_rows_within_bound(self, tiny_workloads):
        rows = run_size_experiment(tiny_workloads, kappas=(2, 4))
        assert len(rows) == 4
        assert all(r.within_bound for r in rows)
        assert all(r.ratio <= 1.0 + 1e-9 for r in rows)

    def test_table_renders(self, tiny_workloads):
        rows = run_size_experiment(tiny_workloads, kappas=(2,))
        table = format_size_table(rows)
        assert "E1" in table
        assert "yes" in table


class TestUltraSparseExperiment:
    def test_excess_within_allowance(self):
        rows = run_ultrasparse_experiment(scaling_workloads(sizes=[48, 96]))
        assert all(r.excess_over_n <= r.allowed_excess + 1e-9 for r in rows)

    def test_excess_fraction_small(self):
        rows = run_ultrasparse_experiment(scaling_workloads(sizes=[96]))
        assert all(r.excess_fraction < 0.5 for r in rows)

    def test_table_renders(self):
        rows = run_ultrasparse_experiment(scaling_workloads(sizes=[48]))
        assert "E2" in format_ultrasparse_table(rows)


class TestStretchExperiment:
    def test_all_rows_valid(self, tiny_workloads):
        rows = run_stretch_experiment(tiny_workloads, kappa=4)
        assert all(r.valid for r in rows)
        assert all(r.max_multiplicative >= 1.0 for r in rows)

    def test_table_renders(self, tiny_workloads):
        rows = run_stretch_experiment(tiny_workloads, kappa=4)
        assert "E3" in format_stretch_table(rows)


class TestBaselinesExperiment:
    def test_ours_is_sparsest_or_close(self, tiny_workloads):
        rows = run_baselines_experiment(tiny_workloads, kappa=8)
        for row in rows:
            assert row.ours <= row.bound + 1e-9
            # Baselines should essentially never beat the paper's construction.
            assert row.ratio(row.elkin_peleg) >= 1.0

    def test_table_renders(self, tiny_workloads):
        rows = run_baselines_experiment(tiny_workloads, kappa=8)
        assert "E4" in format_baselines_table(rows)


class TestCongestExperiment:
    def test_rows_within_bounds(self):
        workloads = [workload_by_name("erdos-renyi", 40, seed=2)]
        rows = run_congest_experiment(workloads, kappa=4, rhos=(0.45,))
        for row in rows:
            assert row.size_ratio <= 1.0 + 1e-9
            assert row.both_endpoints_know
            assert row.rounds > 0

    def test_table_renders(self):
        workloads = [workload_by_name("grid", 36)]
        rows = run_congest_experiment(workloads, kappa=4, rhos=(0.45,))
        assert "E5" in format_congest_table(rows)


class TestSpannerExperiment:
    def test_rows_valid(self, tiny_workloads):
        rows = run_spanner_experiment(tiny_workloads, kappa=4)
        for row in rows:
            assert row.ours_valid
            assert row.em19_valid
            assert row.em19_ratio >= 0.8

    def test_table_renders(self, tiny_workloads):
        rows = run_spanner_experiment(tiny_workloads, kappa=4)
        assert "E6" in format_spanner_table(rows)


class TestRuntimeExperiment:
    def test_rows_have_positive_times(self):
        rows = run_runtime_experiment(scaling_workloads(sizes=[48, 96]))
        assert all(r.algorithm1_seconds > 0 for r in rows)
        assert all(r.fast_seconds > 0 for r in rows)
        assert all(r.algorithm1_us_per_edge > 0 for r in rows)

    def test_table_renders(self):
        rows = run_runtime_experiment(scaling_workloads(sizes=[48]))
        assert "E7" in format_runtime_table(rows)


class TestRunner:
    def test_available_experiments(self):
        ids = available_experiments()
        assert ids[:7] == ["E1", "E2", "E3", "E4", "E5", "E6", "E7"]
        assert ids[7:] == ["E8", "E9", "E10", "E11", "E12", "E13", "E14", "E15", "E16",
                           "E17", "E18", "E19"]

    def test_unknown_experiment(self):
        with pytest.raises(ValueError):
            run_experiment("E99")

    def test_run_single_experiment_quick(self):
        table = run_experiment("E2", quick=True)
        assert "E2" in table


class TestFaultsExperiment:
    def test_schedule_runs_and_faults_never_cost_correctness(self):
        from repro.experiments.faults_experiment import (
            format_faults_table,
            run_faults_experiment,
        )
        from repro.experiments.workloads import workload_by_name

        workload = workload_by_name("erdos-renyi", 48, seed=0)
        served, rows = run_faults_experiment(
            workload=workload, num_queries=30, max_inflight=2
        )
        by_phase = {row.phase: row for row in rows}
        assert set(by_phase) == {"baseline", "overload", "rebuild-crash"}
        assert by_phase["baseline"].availability == 1.0
        assert by_phase["overload"].shed > 0
        assert by_phase["rebuild-crash"].recovery_seconds > 0
        assert all(row.wrong_answers == 0 for row in rows)
        table = format_faults_table(served, rows)
        assert "E18" in table and "overload" in table


class TestDistExperiment:
    def test_chaos_phases_lose_and_corrupt_nothing(self):
        from repro.experiments.dist_experiment import (
            format_dist_table,
            run_dist_experiment,
        )
        from repro.experiments.workloads import workload_by_name

        workload = workload_by_name("erdos-renyi", 40, seed=0)
        served, rows = run_dist_experiment(workload=workload)
        by_phase = {row.phase: row for row in rows}
        assert set(by_phase) == {"baseline", "worker-kill", "straggler",
                                 "coordinator-restart"}
        assert by_phase["worker-kill"].reassignments >= 1
        assert by_phase["straggler"].reassignments >= 1
        assert by_phase["coordinator-restart"].replayed >= 1
        # The availability contract: every phase delivers every record,
        # byte-identical to the serial executor.
        assert all(row.completed == row.tasks for row in rows)
        assert all(row.wrong == 0 and row.lost == 0 for row in rows)
        assert all(row.makespan_seconds > 0 for row in rows)
        table = format_dist_table(served, rows)
        assert "E19" in table and "coordinator-restart" in table
