"""Tests for the oracle-serving daemon (lifecycle, wire protocol, coalescing).

Every daemon here binds port 0 (an ephemeral port) and runs in-process on
a background thread — see CONTRIBUTING.md for the port discipline.
"""

from __future__ import annotations

import http.client
import json
import threading
import time

import pytest

from repro.graphs import generators
from repro.serve import (
    CoalescingEngine,
    DaemonConfig,
    DistanceOracle,
    OracleConfig,
    OracleDaemon,
    QueryEngine,
    RemoteOracle,
    ServeSpec,
    generate_queries,
    load,
    profile,
)
from repro.serve.daemon import from_wire, to_wire


GRAPH = generators.connected_erdos_renyi(48, 0.1, seed=7)


@pytest.fixture(scope="module")
def daemon():
    with OracleDaemon(port=0) as d:
        d.add_oracle("default", GRAPH, ServeSpec(backend="exact"))
        d.add_oracle("emu", GRAPH, ServeSpec(seed=0))
        d.start()
        yield d


def _post(daemon, path, body, *, raw=None):
    """One raw HTTP POST (no client-side conveniences), -> (status, payload)."""
    connection = http.client.HTTPConnection(daemon.host, daemon.port, timeout=5)
    try:
        encoded = raw if raw is not None else json.dumps(body).encode()
        connection.request("POST", path, body=encoded,
                           headers={"Content-Type": "application/json"})
        response = connection.getresponse()
        return response.status, json.loads(response.read())
    finally:
        connection.close()


class TestWireFormat:
    def test_infinity_travels_as_null(self):
        assert to_wire(float("inf")) is None
        assert to_wire(3.0) == 3.0
        assert from_wire(None) == float("inf")
        assert from_wire(3.0) == 3.0


class TestLifecycle:
    def test_ephemeral_port_resolves_and_serves(self):
        with OracleDaemon(port=0) as d:
            d.add_oracle("default", GRAPH, ServeSpec(backend="exact"))
            d.start()
            assert d.port > 0
            assert d.url == f"http://127.0.0.1:{d.port}"
            connection = http.client.HTTPConnection(d.host, d.port, timeout=5)
            connection.request("GET", "/healthz")
            payload = json.loads(connection.getresponse().read())
            connection.close()
            assert payload["ok"] is True
            assert payload["default_oracle"] == "default"

    def test_close_is_idempotent_and_releases_the_port(self):
        d = OracleDaemon(port=0)
        d.add_oracle("default", GRAPH, ServeSpec(backend="exact"))
        d.start()
        port = d.port
        d.close()
        d.close()  # no-op, no deadlock
        # The port is released: a fresh daemon can bind it.
        with OracleDaemon(port=port) as fresh:
            fresh.add_oracle("default", GRAPH, ServeSpec(backend="exact"))
            fresh.start()
            assert fresh.port == port

    def test_first_oracle_is_the_default(self, daemon):
        assert daemon.default_oracle_name == "default"
        assert daemon.oracle_names == ["default", "emu"]
        assert daemon.engine_for(None) is daemon.engine_for("default")

    def test_oracles_must_be_uniquely_named(self):
        with OracleDaemon(port=0) as d:
            d.add_oracle("a", GRAPH, ServeSpec(backend="exact"))
            with pytest.raises(ValueError, match="already served"):
                d.add_oracle("a", GRAPH, ServeSpec(backend="exact"))


class TestWireParity:
    """The daemon answers identically to the in-process stack."""

    def test_serial_parity(self, daemon):
        queries = generate_queries(GRAPH, "mixed", 150, seed=4)
        local = load(GRAPH, ServeSpec(backend="exact"))
        remote = RemoteOracle(daemon.url)
        assert remote.query_batch(queries) == local.query_batch(queries)

    def test_parallel_wire_clients_match_serial_in_process(self, daemon):
        queries = generate_queries(GRAPH, "zipf", 200, seed=5)
        serial = load(GRAPH, ServeSpec(backend="exact")).query_batch(queries)
        answers = [None] * len(queries)
        errors = []

        def client(offset):
            try:
                remote = RemoteOracle(daemon.url)
                for index in range(offset, len(queries), 4):
                    answers[index] = remote.query(*queries[index])
            except Exception as error:  # pragma: no cover - surfaced below
                errors.append(error)

        threads = [threading.Thread(target=client, args=(k,)) for k in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert answers == serial

    def test_named_oracle_answers_with_its_own_stretch(self, daemon):
        emu = RemoteOracle(daemon.url, oracle="emu")
        exact = RemoteOracle(daemon.url, oracle="default")
        assert emu.alpha >= exact.alpha
        for u, v in [(0, 17), (3, 42), (5, 5)]:
            assert emu.query(u, v) >= exact.query(u, v)

    def test_single_source_round_trips_int_keys(self, daemon):
        remote = RemoteOracle(daemon.url)
        local = load(GRAPH, ServeSpec(backend="exact"))
        assert remote.single_source(7) == local.single_source(7)


class TestStats:
    def test_stats_reflect_hits_misses_and_requests(self):
        with OracleDaemon(port=0) as d:
            d.add_oracle("default", GRAPH, ServeSpec(backend="exact"))
            d.start()
            remote = RemoteOracle(d.url)
            remote.query(0, 1)   # miss (source 0 admitted)
            remote.query(0, 2)   # hit
            remote.query(0, 3)   # hit
            stats = d.stats()
            engine_stats = stats["oracles"]["default"]
            assert engine_stats["queries"] == 3
            assert engine_stats["cache_misses"] == 1
            assert engine_stats["cache_hits"] == 2
            # handshake + 3 queries, all accounted
            assert stats["daemon"]["requests"] == 4
            assert stats["daemon"]["request_errors"] == 0
            histogram = stats["daemon"]["latency_ms"]
            assert histogram["count"] == 4
            assert sum(bucket["count"] for bucket in histogram["buckets"]) == 4

    def test_warmup_profile_preloads_the_memo(self):
        queries = generate_queries(GRAPH, "zipf", 300, seed=2)
        prof = profile(queries)
        with OracleDaemon(port=0) as d:
            d.add_oracle("default", GRAPH, ServeSpec(backend="exact"),
                         warmup_profile=prof, warmup_sources=6)
            d.start()
            health = RemoteOracle(d.url).daemon_stats()
            engine_stats = health["oracles"]["default"]
            assert engine_stats["warmed_sources"] == 6
            assert engine_stats["prewarmed_sources"] == 6
            assert engine_stats["cached_sources"] == 6
            # A query for the hottest source is a hit, not a miss.
            hot = prof.top_sources(1)[0]
            remote = RemoteOracle(d.url)
            target = (hot + 1) % GRAPH.num_vertices
            remote.query(hot, target)
            assert d.engine_for("default").stats()["cache_hits"] == 1
            assert d.engine_for("default").stats()["cache_misses"] == 0


class TestMalformedRequests:
    def test_bad_json_is_a_400(self, daemon):
        status, payload = _post(daemon, "/query", None, raw=b"{not json")
        assert status == 400
        assert "JSON" in payload["error"]

    def test_missing_fields_are_a_400(self, daemon):
        status, payload = _post(daemon, "/query", {"u": 0})
        assert status == 400
        assert "'v'" in payload["error"]

    def test_non_integer_vertex_is_a_400(self, daemon):
        for bad in ["7", 1.5, True, None]:
            status, _ = _post(daemon, "/query", {"u": bad, "v": 1})
            assert status == 400

    def test_out_of_range_vertex_is_a_400(self, daemon):
        status, payload = _post(daemon, "/query", {"u": 0, "v": 99999})
        assert status == 400
        assert "out of range" in payload["error"]

    def test_malformed_pairs_are_a_400(self, daemon):
        for bad in [{"pairs": [[0]]}, {"pairs": [[0, 1, 2]]}, {"pairs": "nope"},
                    {"pairs": [[0, "x"]]}]:
            status, _ = _post(daemon, "/query_batch", bad)
            assert status == 400

    def test_body_must_be_a_json_object(self, daemon):
        status, payload = _post(daemon, "/query", [1, 2])
        assert status == 400
        assert "object" in payload["error"]

    def test_unknown_oracle_is_a_404(self, daemon):
        status, payload = _post(daemon, "/query", {"u": 0, "v": 1, "oracle": "nope"})
        assert status == 404
        assert "served oracles" in payload["error"]

    def test_unknown_path_is_a_404(self, daemon):
        status, _ = _post(daemon, "/nonsense", {"u": 0, "v": 1})
        assert status == 404
        connection = http.client.HTTPConnection(daemon.host, daemon.port, timeout=5)
        connection.request("GET", "/nonsense")
        assert connection.getresponse().status == 404
        connection.close()

    def test_wrong_method_is_a_405(self, daemon):
        status, _ = _post(daemon, "/stats", {})
        assert status == 405
        connection = http.client.HTTPConnection(daemon.host, daemon.port, timeout=5)
        connection.request("PUT", "/query", body=b"{}")
        assert connection.getresponse().status == 405
        connection.close()

    def test_errors_count_in_the_stats(self):
        with OracleDaemon(port=0) as d:
            d.add_oracle("default", GRAPH, ServeSpec(backend="exact"))
            d.start()
            _post(d, "/query", {"u": 0})
            assert d.stats()["daemon"]["request_errors"] == 1


class TestCoalescing:
    def test_concurrent_same_source_queries_share_one_backend_call(self):
        backend = load(GRAPH, ServeSpec(backend="exact")).oracle
        gate = threading.Event()
        started = threading.Event()
        calls = []
        original = backend.single_source

        def slow(source):
            calls.append(source)
            started.set()
            gate.wait(timeout=5)
            return original(source)

        backend.single_source = slow
        engine = CoalescingEngine(QueryEngine(backend, cache_sources=8))
        answers = []

        def ask(v):
            answers.append(engine.query(3, v))

        threads = [threading.Thread(target=ask, args=(v,)) for v in range(4, 10)]
        threads[0].start()
        assert started.wait(timeout=5)  # the leader is inside the backend
        for thread in threads[1:]:
            thread.start()
        # Followers must be enqueued on the in-flight record before the
        # gate opens; poll until they all are (they register under the
        # engine lock, so the counter is exact).
        for _ in range(500):
            if engine.stats()["coalesced_queries"] == 5:
                break
            time.sleep(0.01)
        gate.set()
        for thread in threads:
            thread.join()
        assert calls == [3]  # one backend computation for all six queries
        assert engine.stats()["coalesced_queries"] == 5
        exact = original(3)
        assert sorted(answers) == sorted(exact[v] for v in range(4, 10))

    def test_leader_failure_propagates_to_followers_and_is_retryable(self):
        backend = load(GRAPH, ServeSpec(backend="exact")).oracle
        original = backend.single_source
        backend.single_source = lambda source: (_ for _ in ()).throw(RuntimeError("boom"))
        engine = CoalescingEngine(QueryEngine(backend, cache_sources=8))
        with pytest.raises(RuntimeError, match="boom"):
            engine.query(3, 4)
        # The in-flight record is cleaned up: a later query retries fresh.
        backend.single_source = original
        assert engine.query(3, 4) == original(3)[4]
        assert engine.stats()["inflight_sources"] == 0

    def test_satisfies_the_oracle_protocol(self):
        engine = CoalescingEngine(load(GRAPH, ServeSpec(backend="exact")))
        assert isinstance(engine, DistanceOracle)

    def test_stats_delta_covers_the_coalescing_counter(self):
        engine = CoalescingEngine(load(GRAPH, ServeSpec(backend="exact")))
        engine.query(0, 1)
        before = engine.stats()
        engine.query(0, 2)
        delta = engine.stats_delta(before)
        assert delta["queries"] == 1
        assert delta["cache_hits"] == 1
        assert delta["coalesced_queries"] == 0


class TestDaemonConfig:
    def test_from_dict_builds_named_oracles(self):
        config = DaemonConfig.from_dict({
            "oracles": {
                "a": {"spec": {"backend": "exact"}, "family": "erdos-renyi", "n": 32},
                "b": {"spec": {"product": "emulator"}, "family": "erdos-renyi", "n": 32},
            },
            "default_oracle": "b",
        })
        assert sorted(config.oracles) == ["a", "b"]
        assert config.default_oracle == "b"

    def test_config_validation(self):
        with pytest.raises(ValueError, match="at least one oracle"):
            DaemonConfig(oracles={})
        with pytest.raises(ValueError, match="not a configured oracle"):
            DaemonConfig(oracles={"a": OracleConfig()}, default_oracle="b")
        with pytest.raises(ValueError, match="unknown oracle config keys"):
            OracleConfig.from_dict({"nonsense": 1})
        with pytest.raises(ValueError, match="'oracles'"):
            DaemonConfig.from_dict({})

    def test_from_config_file_serves_and_warms(self, tmp_path):
        queries = generate_queries(GRAPH, "zipf", 100, seed=1)
        profile_path = tmp_path / "profile.json"
        profile(queries).save(str(profile_path))
        config_path = tmp_path / "daemon.json"
        config_path.write_text(json.dumps({
            "oracles": {
                "main": {
                    "spec": {"backend": "exact"},
                    "family": "erdos-renyi",
                    "n": 48,
                    "graph_seed": 7,
                    "warmup_profile": str(profile_path),
                    "warmup_sources": 4,
                },
            },
        }))
        with OracleDaemon.from_config(DaemonConfig.from_file(str(config_path))) as d:
            d.start()
            remote = RemoteOracle(d.url)
            assert remote.oracle_name == "main"
            assert remote.num_vertices == 48
            assert d.stats()["oracles"]["main"]["warmed_sources"] == 4


class TestWireSweep:
    def test_sweep_reports_each_concurrency_level(self, daemon):
        from repro.serve import run_wire_sweep

        report = run_wire_sweep(
            daemon.url, GRAPH, workload="zipf", num_queries=80,
            concurrency=(1, 2), stretch_sample=20,
        )
        assert [level.concurrency for level in report.levels] == [1, 2]
        for level in report.levels:
            assert level.num_queries == 80
            assert level.throughput_qps > 0
            assert level.latency_p50_ms <= level.latency_p95_ms <= level.latency_p99_ms
        assert report.stretch_ok
        assert report.oracle == "default"
        assert report.daemon_stats["oracles"]["default"]["queries"] > 0

    def test_report_round_trips_through_json(self, daemon):
        from repro.serve import WireSweepReport, run_wire_sweep

        report = run_wire_sweep(
            daemon.url, GRAPH, workload="uniform", num_queries=40,
            concurrency=(1,), stretch_sample=10,
        )
        clone = WireSweepReport.from_json(report.to_json())
        assert clone.levels == report.levels
        assert clone.url == report.url
        assert "q/s" in report.summary()

    def test_sweep_rejects_a_mismatched_graph(self, daemon):
        from repro.serve import run_wire_sweep

        other = generators.connected_erdos_renyi(20, 0.2, seed=2)
        with pytest.raises(ValueError, match="vertices"):
            run_wire_sweep(daemon.url, other, num_queries=10)

    def test_sweep_validates_concurrency(self, daemon):
        from repro.serve import run_wire_sweep

        with pytest.raises(ValueError):
            run_wire_sweep(daemon.url, GRAPH, num_queries=10, concurrency=())
        with pytest.raises(ValueError):
            run_wire_sweep(daemon.url, GRAPH, num_queries=10, concurrency=(0,))


class TestGracefulDrain:
    """SIGTERM-style shutdown: finish in-flight work, refuse new work."""

    def _daemon(self):
        d = OracleDaemon(port=0)
        d.add_oracle("default", GRAPH, ServeSpec(backend="exact"))
        d.start()
        return d

    def test_inflight_request_completes_during_drain(self):
        from repro.faults import fault_plan

        plan = {"rules": [{"site": "daemon.request", "action": "delay",
                           "delay_seconds": 0.4}]}
        with fault_plan(plan):
            daemon = self._daemon()
            outcome = {}

            def client():
                outcome["status"], outcome["payload"] = _post(
                    daemon, "/query", {"u": 0, "v": 1}
                )

            thread = threading.Thread(target=client)
            thread.start()
            deadline = time.monotonic() + 5.0
            while daemon._inflight_requests == 0 and time.monotonic() < deadline:
                time.sleep(0.005)
            assert daemon._inflight_requests > 0

            assert daemon.drain(timeout=5.0) is True
            thread.join(timeout=5.0)
            # The admitted request ran to a full 200, not a cut stream.
            assert outcome["status"] == 200
            assert isinstance(outcome["payload"]["answer"], (int, float))

    def test_new_connections_are_refused_after_drain(self):
        daemon = self._daemon()
        host, port = daemon.host, daemon.port
        assert daemon.drain(timeout=5.0) is True
        connection = http.client.HTTPConnection(host, port, timeout=2)
        try:
            with pytest.raises(OSError):
                connection.request("GET", "/healthz")
                connection.getresponse()
        finally:
            connection.close()

    def test_requests_during_drain_get_503_then_drain_finishes(self):
        from repro.faults import fault_plan

        # Only /single_source is slowed, so the keep-alive /query probe
        # below stays fast.
        plan = {"rules": [{"site": "daemon.request", "action": "delay",
                           "delay_seconds": 0.6,
                           "where": {"endpoint": "/single_source"}}]}
        with fault_plan(plan) as installed:
            daemon = self._daemon()
            keepalive = http.client.HTTPConnection(daemon.host, daemon.port,
                                                   timeout=5)
            try:
                keepalive.request(
                    "POST", "/query", body=json.dumps({"u": 0, "v": 1}).encode(),
                    headers={"Content-Type": "application/json"})
                response = keepalive.getresponse()
                assert response.status == 200
                response.read()  # keep the connection reusable

                slow = {}

                def slow_client():
                    slow["status"], slow["payload"] = _post(
                        daemon, "/single_source", {"source": 0}
                    )

                slow_thread = threading.Thread(target=slow_client)
                slow_thread.start()
                # The delay rule only matches the slow /single_source
                # request, and its injection is recorded before the sleep
                # starts — so an injected count means the slow request is
                # admitted and inflight (a bare inflight poll could be
                # satisfied by the keepalive probe's not-yet-finished
                # handler and let drain() close the listener before the
                # slow client even connects).
                deadline = time.monotonic() + 5.0
                while (installed.stats().get("daemon.request", {}).get("injected", 0) == 0
                       and time.monotonic() < deadline):
                    time.sleep(0.005)
                assert installed.stats()["daemon.request"]["injected"] >= 1

                drained = {}
                drain_thread = threading.Thread(
                    target=lambda: drained.setdefault("ok", daemon.drain(10.0)))
                drain_thread.start()
                deadline = time.monotonic() + 5.0
                while (daemon.healthz()["status"] != "draining"
                       and time.monotonic() < deadline):
                    time.sleep(0.005)
                assert daemon.healthz()["status"] == "draining"

                # A new request on the existing keep-alive connection is
                # shed, with Retry-After, while the slow one still runs.
                keepalive.request(
                    "POST", "/query", body=json.dumps({"u": 0, "v": 1}).encode(),
                    headers={"Content-Type": "application/json"})
                shed = keepalive.getresponse()
                shed_body = json.loads(shed.read())
                assert shed.status == 503
                assert shed.getheader("Retry-After") is not None
                assert "draining" in shed_body["error"]

                slow_thread.join(timeout=10.0)
                drain_thread.join(timeout=10.0)
                assert slow["status"] == 200
                assert drained["ok"] is True
                assert daemon.shed_requests >= 1
            finally:
                keepalive.close()

    def test_idle_keepalive_client_sees_clean_eof(self):
        daemon = self._daemon()
        connection = http.client.HTTPConnection(daemon.host, daemon.port,
                                                timeout=5)
        try:
            connection.request(
                "POST", "/query", body=json.dumps({"u": 0, "v": 1}).encode(),
                headers={"Content-Type": "application/json"})
            response = connection.getresponse()
            assert response.status == 200
            response.read()

            assert daemon.drain(timeout=5.0) is True
            # The fully-answered connection ends with a FIN, not a reset:
            # the client reads a clean EOF.
            sock = connection.sock
            sock.settimeout(2.0)
            assert sock.recv(1024) == b""
        finally:
            connection.close()

    def test_drain_after_close_is_a_noop(self):
        daemon = self._daemon()
        daemon.close()
        assert daemon.drain(timeout=1.0) is True
