#!/usr/bin/env python3
"""CI distributed-sweep smoke: kill a worker mid-sweep, lose nothing.

Usage: dist_smoke.py [N]

End-to-end drill of the lease-based work queue (:mod:`repro.dist`)
across real process boundaries:

1. run the reference sweep through the serial in-process executor;
2. start an in-process ``DistCoordinator`` on an ephemeral port and two
   ``repro dist-worker`` subprocesses sharing one result-cache
   directory — the victim worker runs under a ``REPRO_FAULTS`` plan
   that stalls every build, so it leases a task and sits on it;
3. SIGKILL the victim once ``/status`` shows it holding a lease — from
   the coordinator's side that is heartbeat silence, so the lease
   expires and the reaper re-dispatches the task to the survivor;
4. assert the contract over the wire: ``/status`` reports the lease
   reassignment, every task lands ``DONE``, and the delivered records
   are byte-identical to the serial executor's.

Every wait is a deadline-bounded poll against a monotonic clock — no
fixed sleeps.  Exits non-zero (with the last observed state) on any
violated assertion.
"""

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
import urllib.request
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.api import GridSweep, run_sweep  # noqa: E402
from repro.api.cache import ResultCache  # noqa: E402
from repro.dist import DistCoordinator, canonical_record  # noqa: E402
from repro.experiments.workloads import workload_by_name  # noqa: E402

#: Upper bounds (seconds) on each deadline-bounded phase.
LEASE_DEADLINE = 30.0
DRAIN_DEADLINE = 120.0

SWEEP = GridSweep(products=("emulator", "spanner"), methods=("centralized",),
                  eps_values=(None, 0.25), kappas=(None, 4.0))

#: Stalls every build on the victim so it holds (never completes) a lease.
VICTIM_FAULTS = json.dumps({
    "seed": 0,
    "rules": [{"site": "dist.task", "action": "delay",
               "delay_seconds": 600.0, "where": {"worker": "victim"}}],
})


def _status(url):
    with urllib.request.urlopen(url + "/status", timeout=5.0) as response:
        return json.load(response)


def _spawn_worker(url, cache_dir, worker_id, *, faults=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get(
        "PYTHONPATH", "")
    if faults is not None:
        env["REPRO_FAULTS"] = faults
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "dist-worker", "--url", url,
         "--cache-dir", str(cache_dir), "--worker-id", worker_id,
         "--give-up-after", "15"],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.STDOUT,
    )


def _wait_for_victim_lease(url):
    """Poll ``/status`` until the victim holds a lease; return the row."""
    deadline = time.monotonic() + LEASE_DEADLINE
    last = None
    while time.monotonic() < deadline:
        last = _status(url)
        held = [row for row in last["rows"]
                if row["state"] == "leased" and row["worker"] == "victim"]
        if held:
            return held[0]
        time.sleep(0.05)
    raise SystemExit(
        f"victim never leased a task within {LEASE_DEADLINE:.0f}s; "
        f"last status: {json.dumps(last)[:2000]}"
    )


def main(argv):
    n = int(argv[1]) if len(argv) > 1 else 48
    workload = workload_by_name("erdos-renyi", n, seed=0)
    reference = [
        canonical_record(record.result)
        for record in run_sweep({workload.name: workload.graph}, SWEEP)
    ]
    print(f"serial reference: {len(reference)} record(s)")

    tasks = [(index, workload.name, workload.graph, spec)
             for index, spec in enumerate(SWEEP.specs())]
    victim = survivor = None
    with tempfile.TemporaryDirectory(prefix="repro-dist-smoke-") as tmp:
        store = ResultCache(Path(tmp) / "cache")
        coordinator = DistCoordinator(
            tasks, store, lease_ttl=1.0, max_attempts=5
        ).start()
        try:
            print(f"coordinator listening on {coordinator.url}")
            victim = _spawn_worker(coordinator.url, store.directory, "victim",
                                   faults=VICTIM_FAULTS)
            held = _wait_for_victim_lease(coordinator.url)
            print(f"victim leased task {held['task']} "
                  f"({held['product']}/{held['method']}); killing it")
            victim.send_signal(signal.SIGKILL)
            victim.wait(timeout=10.0)

            survivor = _spawn_worker(coordinator.url, store.directory,
                                     "survivor")
            assert coordinator.wait(timeout=DRAIN_DEADLINE), (
                f"sweep never drained within {DRAIN_DEADLINE:.0f}s; "
                f"last status: {json.dumps(_status(coordinator.url))[:2000]}"
            )

            status = _status(coordinator.url)
            outcomes = coordinator.outcomes()
        finally:
            coordinator.close()
            for process in (victim, survivor):
                if process is not None and process.poll() is None:
                    process.terminate()
                    process.wait(timeout=10.0)

    # The contract, over the wire: the kill shows up as a reassignment,
    # and costs neither completeness nor content.
    assert status["reassignments"] >= 1, status
    assert status["tasks"]["done"] == status["tasks"]["total"] == len(
        reference), status["tasks"]
    delivered = [canonical_record(result)
                 for (_index, _worker, result, _retries, _error) in outcomes]
    assert delivered == reference, "distributed records diverge from serial"
    workers = {row["worker"] for row in status["rows"]}
    assert "survivor" in workers, status["rows"]
    print(f"dist smoke: {status['tasks']['done']} task(s) done, "
          f"{status['reassignments']} reassignment(s) after worker kill, "
          f"records byte-identical to the serial executor")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
