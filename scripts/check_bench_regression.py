#!/usr/bin/env python
"""Fail CI when benchmarks regress past a threshold against a baseline.

Usage::

    python scripts/check_bench_regression.py bench.json benchmarks/baseline.json \
        [--threshold 2.0]

``bench.json`` is the output of ``pytest benchmarks/ --benchmark-json=bench.json``
(the pytest-benchmark schema: a top-level ``benchmarks`` list whose entries
carry ``fullname`` and ``stats.mean``).  The baseline may use the same
schema or the flat ``{"benchmarks": {fullname: mean_seconds}}`` map this
repo checks in (see ``benchmarks/baseline.json`` and CONTRIBUTING.md for
how to refresh it).

Exit status is non-zero when any benchmark present in both files is more
than ``threshold`` times slower than its baseline mean.  Benchmarks
missing from either side are reported but never fail the check — CI
machines come and go, the baseline is refreshed separately from the code
that adds benchmarks.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Tuple


def load_means(path: str) -> Dict[str, float]:
    """Read ``{benchmark fullname: mean seconds}`` from either schema."""
    with open(path) as handle:
        data = json.load(handle)
    benchmarks = data.get("benchmarks", data)
    if isinstance(benchmarks, list):
        return {
            entry["fullname"]: float(entry["stats"]["mean"])
            for entry in benchmarks
        }
    return {name: float(mean) for name, mean in benchmarks.items()}


def find_regressions(
    current: Dict[str, float],
    baseline: Dict[str, float],
    threshold: float,
    min_seconds: float = 0.0,
) -> List[Tuple[str, float, float, float]]:
    """Benchmarks slower than ``threshold``x baseline: (name, base, now, ratio).

    Benchmarks whose baseline mean is below ``min_seconds`` are exempt:
    at sub-millisecond scales the ratio measures scheduler noise and
    machine speed, not the code.
    """
    regressions = []
    for name, base_mean in sorted(baseline.items()):
        now = current.get(name)
        if now is None or base_mean <= 0 or base_mean < min_seconds:
            continue
        ratio = now / base_mean
        if ratio > threshold:
            regressions.append((name, base_mean, now, ratio))
    return regressions


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("bench_json", help="pytest-benchmark JSON of the current run")
    parser.add_argument("baseline_json", help="checked-in baseline JSON")
    parser.add_argument("--threshold", type=float, default=2.0,
                        help="fail when mean exceeds baseline by this factor "
                             "(default: 2.0)")
    parser.add_argument("--min-seconds", type=float, default=0.005,
                        help="ignore benchmarks whose baseline mean is below "
                             "this (sub-millisecond ratios measure machine "
                             "noise, not the code; default: 0.005)")
    args = parser.parse_args(argv)

    current = load_means(args.bench_json)
    baseline = load_means(args.baseline_json)
    compared = sorted(set(current) & set(baseline))
    only_current = sorted(set(current) - set(baseline))
    only_baseline = sorted(set(baseline) - set(current))

    print(f"compared {len(compared)} benchmark(s) against {args.baseline_json} "
          f"(threshold {args.threshold:g}x, floor {args.min_seconds:g}s)")
    if only_current:
        print(f"note: {len(only_current)} benchmark(s) have no baseline yet: "
              + ", ".join(only_current))
    if only_baseline:
        print(f"note: {len(only_baseline)} baseline entry(ies) did not run: "
              + ", ".join(only_baseline))

    regressions = find_regressions(current, baseline, args.threshold,
                                   min_seconds=args.min_seconds)
    if not regressions:
        print("OK: no benchmark regressed past the threshold")
        return 0
    print(f"FAIL: {len(regressions)} benchmark(s) regressed:")
    for name, base_mean, now, ratio in regressions:
        print(f"  {name}: {base_mean:.6f}s -> {now:.6f}s ({ratio:.2f}x)")
    return 1


if __name__ == "__main__":
    sys.exit(main())
