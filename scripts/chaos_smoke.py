#!/usr/bin/env python3
"""CI chaos smoke: drive a fault-injected daemon through overload and back.

Usage: chaos_smoke.py URL [BURST]

Expects a ``repro serve-daemon`` started with a small ``--max-inflight``
under a ``REPRO_FAULTS`` plan that delays every ``/query`` (see
.github/workflows/ci.yml).  Fires a concurrent burst past the admission
bound and asserts the hardening contract end to end:

* ``/healthz`` keeps answering mid-burst (GETs bypass admission) and
  reports ``degraded`` while admission is saturated;
* some requests still answer 200 and the rest shed with
  ``503 + Retry-After`` (never hang, never 500);
* the daemon reports ``healthy`` again once the burst passes, with
  ``shed_requests`` matching the observed 503s.

Every wait is a deadline-bounded poll against a monotonic clock — no
fixed sleeps, no wall-clock races: the script waits for ``/healthz`` to
start answering (so callers need no startup sleep of their own), bounds
the burst, and bounds the recovery wait, failing loudly with the last
observed state when a deadline passes.

Exits non-zero on any violated assertion.
"""

import json
import sys
import threading
import time
import urllib.error
import urllib.request

#: Upper bounds (seconds) on each deadline-bounded phase.
STARTUP_DEADLINE = 30.0
BURST_DEADLINE = 30.0
RECOVERY_DEADLINE = 10.0


def _get(url, path, timeout=5.0):
    with urllib.request.urlopen(url + path, timeout=timeout) as response:
        return json.load(response)


def _wait_until_serving(url):
    """Poll ``/healthz`` until the daemon answers; no fixed startup sleep.

    Connection refusals and timeouts are the expected shape of "not up
    yet" and are retried until the deadline; anything the daemon
    *answers* is returned immediately.
    """
    deadline = time.monotonic() + STARTUP_DEADLINE
    last_error = None
    while time.monotonic() < deadline:
        try:
            return _get(url, "/healthz", timeout=2.0)
        except (urllib.error.URLError, ConnectionError, OSError) as error:
            last_error = error
            time.sleep(0.05)
    raise SystemExit(
        f"daemon at {url} never started answering /healthz within "
        f"{STARTUP_DEADLINE:.0f}s (last error: {last_error})"
    )


def main(argv):
    if len(argv) < 2:
        print(__doc__)
        return 2
    url = argv[1].rstrip("/")
    burst = int(argv[2]) if len(argv) > 2 else 8

    health = _wait_until_serving(url)
    assert health["ok"], health

    statuses = []
    retry_after = []
    lock = threading.Lock()

    def client():
        body = json.dumps({"u": 0, "v": 17}).encode()
        request = urllib.request.Request(
            url + "/query", data=body,
            headers={"Content-Type": "application/json"})
        try:
            with urllib.request.urlopen(request, timeout=30) as response:
                status, header = response.status, None
        except urllib.error.HTTPError as error:
            status, header = error.code, error.headers.get("Retry-After")
            error.read()
        with lock:
            statuses.append(status)
            if status == 503:
                retry_after.append(header)

    threads = [threading.Thread(target=client) for _ in range(burst)]
    for thread in threads:
        thread.start()

    # Mid-burst: /healthz still answers (GETs bypass admission) and grades
    # the saturation as degraded while the injected delay holds slots.
    saw_degraded = False
    deadline = time.monotonic() + BURST_DEADLINE
    while time.monotonic() < deadline:
        health = _get(url, "/healthz")
        assert health["ok"], health
        if health["status"] == "degraded":
            saw_degraded = True
            break
        if all(not thread.is_alive() for thread in threads):
            break
        time.sleep(0.01)
    for thread in threads:
        thread.join(timeout=max(0.0, deadline - time.monotonic()) + 30.0)
    stuck = sum(1 for thread in threads if thread.is_alive())
    assert not stuck, f"{stuck} burst request(s) never completed (hang)"
    assert saw_degraded, "healthz never reported degraded during the burst"

    answered = statuses.count(200)
    shed = statuses.count(503)
    assert answered >= 1, statuses
    assert shed >= 1, statuses
    assert answered + shed == len(statuses), statuses
    assert all(value is not None for value in retry_after), retry_after

    # Recovery: healthy again once the burst passes.
    deadline = time.monotonic() + RECOVERY_DEADLINE
    while True:
        status = _get(url, "/healthz")["status"]
        if status == "healthy":
            break
        assert time.monotonic() < deadline, (
            f"daemon never recovered to healthy (last status: {status})"
        )
        time.sleep(0.05)

    counted = _get(url, "/stats")["daemon"]["shed_requests"]
    assert counted >= shed, (counted, shed)
    print(f"chaos smoke: {answered} answered, {shed} shed "
          f"(daemon counted {counted}), recovered healthy")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
