#!/usr/bin/env python3
"""CI chaos smoke: drive a fault-injected daemon through overload and back.

Usage: chaos_smoke.py URL [BURST]

Expects a ``repro serve-daemon`` started with a small ``--max-inflight``
under a ``REPRO_FAULTS`` plan that delays every ``/query`` (see
.github/workflows/ci.yml).  Fires a concurrent burst past the admission
bound and asserts the hardening contract end to end:

* ``/healthz`` keeps answering mid-burst (GETs bypass admission) and
  reports ``degraded`` while admission is saturated;
* some requests still answer 200 and the rest shed with
  ``503 + Retry-After`` (never hang, never 500);
* the daemon reports ``healthy`` again once the burst passes, with
  ``shed_requests`` matching the observed 503s.

Exits non-zero on any violated assertion.
"""

import json
import sys
import threading
import time
import urllib.error
import urllib.request


def _get(url, path, timeout=5.0):
    with urllib.request.urlopen(url + path, timeout=timeout) as response:
        return json.load(response)


def main(argv):
    if len(argv) < 2:
        print(__doc__)
        return 2
    url = argv[1].rstrip("/")
    burst = int(argv[2]) if len(argv) > 2 else 8

    statuses = []
    retry_after = []
    lock = threading.Lock()

    def client():
        body = json.dumps({"u": 0, "v": 17}).encode()
        request = urllib.request.Request(
            url + "/query", data=body,
            headers={"Content-Type": "application/json"})
        try:
            with urllib.request.urlopen(request, timeout=30) as response:
                status, header = response.status, None
        except urllib.error.HTTPError as error:
            status, header = error.code, error.headers.get("Retry-After")
            error.read()
        with lock:
            statuses.append(status)
            if status == 503:
                retry_after.append(header)

    threads = [threading.Thread(target=client) for _ in range(burst)]
    for thread in threads:
        thread.start()

    # Mid-burst: /healthz still answers (GETs bypass admission) and grades
    # the saturation as degraded while the injected delay holds slots.
    saw_degraded = False
    deadline = time.time() + 10.0
    while time.time() < deadline:
        health = _get(url, "/healthz")
        assert health["ok"], health
        if health["status"] == "degraded":
            saw_degraded = True
            break
        if all(not thread.is_alive() for thread in threads):
            break
        time.sleep(0.01)
    for thread in threads:
        thread.join()
    assert saw_degraded, "healthz never reported degraded during the burst"

    answered = statuses.count(200)
    shed = statuses.count(503)
    assert answered >= 1, statuses
    assert shed >= 1, statuses
    assert answered + shed == len(statuses), statuses
    assert all(value is not None for value in retry_after), retry_after

    # Recovery: healthy again once the burst passes.
    deadline = time.time() + 10.0
    while _get(url, "/healthz")["status"] != "healthy":
        assert time.time() < deadline, "daemon never recovered to healthy"
        time.sleep(0.05)

    counted = _get(url, "/stats")["daemon"]["shed_requests"]
    assert counted >= shed, (counted, shed)
    print(f"chaos smoke: {answered} answered, {shed} shed "
          f"(daemon counted {counted}), recovered healthy")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
