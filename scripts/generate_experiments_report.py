#!/usr/bin/env python3
"""Regenerate the measured tables embedded in EXPERIMENTS.md.

Runs experiments E1-E13 at the same workload sizes the benchmark harness uses
and writes the rendered tables to ``experiments_report.txt`` (and optionally
refreshes the measured sections of EXPERIMENTS.md by hand).

Usage::

    python scripts/generate_experiments_report.py [--quick] [--output FILE]
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.experiments.runner import available_experiments, run_experiment


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="use smaller workloads")
    parser.add_argument("--output", default="experiments_report.txt",
                        help="file to write the rendered tables to")
    parser.add_argument("--only", choices=available_experiments(), default=None,
                        help="run a single experiment")
    args = parser.parse_args(argv)

    experiment_ids = [args.only] if args.only else available_experiments()
    sections = []
    for experiment_id in experiment_ids:
        start = time.perf_counter()
        table = run_experiment(experiment_id, quick=args.quick)
        elapsed = time.perf_counter() - start
        sections.append(f"{table}\n[{experiment_id} completed in {elapsed:.1f}s]\n")
        print(f"{experiment_id} done in {elapsed:.1f}s", file=sys.stderr)

    report = "\n".join(sections)
    Path(args.output).write_text(report, encoding="utf-8")
    print(report)
    return 0


if __name__ == "__main__":
    sys.exit(main())
