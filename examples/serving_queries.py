"""Serve approximate distance queries from a preprocessed oracle.

The build layer constructs the sparse product once; the serving layer
(`repro.serve`) loads it behind a bounded-LRU query engine and answers
distance queries under load.  This example:

1. loads three serving stacks (emulator, hopset, exact reference) for the
   same graph,
2. answers a few ad-hoc queries and shows the guarantee sandwich
   ``d_G <= answer <= alpha * d_G + beta``, and
3. runs the load harness on a Zipf-skewed query stream and prints the
   throughput / latency / stretch report every backend is judged by.

Run with::

    PYTHONPATH=src python examples/serving_queries.py
"""

from __future__ import annotations

from repro.graphs import generators
from repro.graphs.shortest_paths import bfs_distances
from repro.serve import ServeSpec, load, run_load_test


def main() -> None:
    graph = generators.connected_erdos_renyi(200, 0.03, seed=7)
    print(f"graph: n={graph.num_vertices}, m={graph.num_edges}")

    print("\n-- ad-hoc queries ------------------------------------------")
    exact = bfs_distances(graph, 0)
    for backend in ("emulator", "hopset", "exact"):
        engine = load(graph, ServeSpec(backend=backend))
        answer = engine.query(0, 150)
        print(
            f"{backend:>8}: {engine.space_in_edges:4d} stored edges, "
            f"d(0, 150) <= {answer:g} "
            f"(exact {exact[150]}, guarantee alpha={engine.alpha:.2f}, "
            f"beta={engine.beta:g})"
        )

    print("\n-- load harness (zipf stream, 2000 queries) ----------------")
    for backend in ("emulator", "exact"):
        report = run_load_test(
            graph,
            ServeSpec(backend=backend),
            workload="zipf",
            num_queries=2000,
            stretch_sample=100,
        )
        print(report.summary())
        hits = report.engine_stats["cache_hits"]
        misses = report.engine_stats["cache_misses"]
        print(f"          LRU memo: {hits} hit(s), {misses} miss(es)")


if __name__ == "__main__":
    main()
