#!/usr/bin/env python3
"""Approximate shortest paths through an ultra-sparse emulator.

The canonical application of near-additive emulators (and the motivation in
the paper's introduction): answer many approximate distance queries against a
structure that is far sparser than the input graph.  This example:

1. builds an *ultra-sparse* emulator (``kappa = omega(log n)``, so only
   ``n + o(n)`` edges) for a 2-D grid,
2. compares query answers (Dijkstra on the emulator) against exact BFS
   distances on the original graph, and
3. reports the speed/space trade-off: emulator edges vs graph edges, and the
   observed error distribution.

Run with::

    python examples/approximate_shortest_paths.py
"""

from __future__ import annotations

import random
import time

from repro import BuildSpec, build, generators, ultra_sparse_kappa
from repro.core.parameters import CentralizedSchedule
from repro.graphs.shortest_paths import bfs_distances


def main() -> None:
    # A 40x40 grid: 1600 vertices, large diameter — the regime where
    # near-additive (rather than multiplicative) guarantees shine.
    graph = generators.grid_graph(40, 40)
    n = graph.num_vertices
    print(f"graph: {n} vertices, {graph.num_edges} edges (40x40 grid)")

    # Ultra-sparse schedule: kappa = f(n) log n  =>  n + o(n) emulator edges.
    kappa = ultra_sparse_kappa(n)
    schedule = CentralizedSchedule(n=n, eps=0.1, kappa=kappa)
    start = time.perf_counter()
    result = build(graph, BuildSpec(product="emulator", schedule=schedule)).raw
    build_seconds = time.perf_counter() - start
    print(f"emulator: {result.num_edges} edges "
          f"({result.num_edges - n} more than n) built in {build_seconds:.2f}s "
          f"[kappa = {kappa:.1f}]")

    # Answer sampled distance queries from both structures.
    rng = random.Random(0)
    sources = [rng.randrange(n) for _ in range(10)]
    exact_total = 0.0
    approx_total = 0.0
    worst_additive = 0.0
    worst_ratio = 1.0
    num_queries = 0

    start = time.perf_counter()
    exact = {s: bfs_distances(graph, s) for s in sources}
    exact_seconds = time.perf_counter() - start

    start = time.perf_counter()
    approx = {s: result.emulator.dijkstra(s) for s in sources}
    approx_seconds = time.perf_counter() - start

    for s in sources:
        for t, d in exact[s].items():
            if t == s:
                continue
            dh = approx[s].get(t, float("inf"))
            exact_total += d
            approx_total += dh
            worst_additive = max(worst_additive, dh - d)
            worst_ratio = max(worst_ratio, dh / d)
            num_queries += 1

    print(f"answered {num_queries} distance queries from {len(sources)} sources")
    print(f"  exact BFS on G:        {exact_seconds:.3f}s")
    print(f"  Dijkstra on emulator:  {approx_seconds:.3f}s")
    print(f"  mean inflation: {approx_total / exact_total:.4f}x, "
          f"worst multiplicative {worst_ratio:.3f}x, worst additive {worst_additive:.0f}")
    print(f"  guaranteed: ({result.alpha:.2f} d + {result.beta:.0f})")


if __name__ == "__main__":
    main()
