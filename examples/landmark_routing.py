#!/usr/bin/env python3
"""Example: landmark routing tables backed by an ultra-sparse emulator.

A network operator wants every node to answer "roughly how far is node X?"
from a small local table instead of a full distance matrix.  The emulator's
cluster hierarchy provides natural landmarks; the emulator itself (with its
``n + o(n)`` edges) is all that is needed to precompute landmark-to-landmark
distances.

Run it with::

    python examples/landmark_routing.py
"""

from __future__ import annotations

from repro.applications import LandmarkRoutingScheme
from repro.graphs import generators
from repro.graphs.shortest_paths import bfs_distances


def main() -> None:
    """Build routing tables for a clustered topology and measure their quality."""
    # A ring of cliques: dense local pods connected in a sparse global ring —
    # the classic shape where landmark routing shines.
    graph = generators.ring_of_cliques(num_cliques=12, clique_size=16)
    print(f"topology: {graph.num_vertices} vertices, {graph.num_edges} edges "
          f"(12 pods of 16 nodes)")

    scheme = LandmarkRoutingScheme(graph, eps=0.1)
    tables = scheme.tables
    print(f"landmarks: {scheme.num_landmarks}")
    print(f"table size: {tables.total_words} words total, "
          f"{tables.words_per_vertex:.2f} words per vertex on average")

    # Compare a few routed estimates against exact distances.
    source = 0
    exact = bfs_distances(graph, source)
    print(f"\nsample queries from vertex {source}:")
    for target in (5, 40, 95, 150):
        estimate = scheme.estimate(source, target)
        print(f"  to {target:>4}: exact {exact[target]:>3}   routed estimate {estimate:>6.1f}")

    summary = scheme.stretch_summary(sample_sources=8)
    print(f"\nmeasured over {int(summary['pairs'])} pairs: "
          f"mean stretch {summary['mean_stretch']:.3f}, "
          f"max stretch {summary['max_stretch']:.3f}, "
          f"max additive overhead {summary['max_additive']:.1f}")


if __name__ == "__main__":
    main()
