#!/usr/bin/env python3
"""Example: using the emulator's edge set as a hopset for few-hop SSSP.

Parallel, distributed and dynamic shortest-path pipelines all share the same
bottleneck: the number of *hops* a shortest path needs is the number of
rounds / iterations the pipeline pays.  A hopset shortcuts long paths so a
hop-limited search already returns (near-)exact distances.

This example builds an ultra-sparse hopset for a large-diameter graph (a 2-D
grid), and compares:

* how many hops a plain BFS needs to cover the sampled pairs (the graph
  distance itself), against
* how many hops suffice on ``G ∪ H`` to reach the same-quality distances.

Run it with::

    python examples/hopset_limited_hops.py
"""

from __future__ import annotations

from repro.graphs import generators
from repro.graphs.shortest_paths import bfs_distances
from repro import BuildSpec, build
from repro.hopsets import hop_limited_distances, union_with_graph
from repro.hopsets.hopset import exact_hopbound


def main() -> None:
    """Build a hopset for a 16x16 grid and show the hop-count saving."""
    graph = generators.grid_graph(16, 16)
    print(f"input graph: {graph.num_vertices} vertices, {graph.num_edges} edges "
          f"(diameter-heavy 16x16 grid)")

    hopset = build(graph, BuildSpec(product="hopset", eps=0.1)).raw
    print(f"hopset: {hopset.num_edges} weighted edges "
          f"(ultra-sparse: barely above n = {graph.num_vertices})")

    union = union_with_graph(graph, hopset.hopset)
    source = 0
    exact = bfs_distances(graph, source)
    farthest = max(exact, key=exact.get)
    print(f"farthest vertex from {source}: {farthest} at graph distance {exact[farthest]}")

    for hops in (2, 4, 8, 16):
        limited = hop_limited_distances(union, source, hops)
        reached = limited.get(farthest, float("inf"))
        print(f"  {hops:>3} hops through G ∪ H: distance estimate {reached}")

    needed = exact_hopbound(graph, hopset.hopset, sample_pairs=200)
    print(f"hop budget that already matches the full G ∪ H distances on 200 "
          f"sampled pairs: {needed} (plain BFS would need up to "
          f"{max(exact.values())} hops from this source alone)")


if __name__ == "__main__":
    main()
