#!/usr/bin/env python3
"""Spanners vs emulators vs baselines: the sparsity landscape.

Reproduces, on one graph, the comparison the paper's introduction makes:

* the paper's emulator      — at most ``n^(1+1/kappa)`` edges (constant 1);
* EP01 / TZ06 / EN17a       — prior emulators, ``>= c n`` with ``c >= 2``
                               at their sparsest;
* Section 4 spanner         — ``O(n^(1+1/kappa))`` subgraph edges;
* EM19 spanner              — ``O(beta n^(1+1/kappa))`` subgraph edges;
* greedy multiplicative     — the classic (2k-1)-spanner for calibration.

Run with::

    python examples/spanner_vs_emulator.py
"""

from __future__ import annotations

from repro import BuildSpec, build, generators, size_bound, ultra_sparse_kappa
from repro.analysis.reporting import format_table
from repro.baselines import (
    build_elkin_neiman_emulator,
    build_elkin_peleg_emulator,
    build_em19_spanner,
    build_thorup_zwick_emulator,
    greedy_multiplicative_spanner,
)
from repro.core.parameters import CentralizedSchedule


def main() -> None:
    graph = generators.preferential_attachment(500, 3, seed=11)
    n, m = graph.num_vertices, graph.num_edges
    print(f"input: preferential-attachment graph, {n} vertices, {m} edges\n")

    kappa = ultra_sparse_kappa(n)
    eps = 0.1
    schedule = CentralizedSchedule(n=n, eps=eps, kappa=kappa)

    rows = []

    ours = build(graph, BuildSpec(product="emulator", schedule=schedule))
    rows.append(["ours: ultra-sparse emulator (Alg.1)", "emulator", ours.size,
                 ours.size / n])

    ep01 = build_elkin_peleg_emulator(graph, eps=eps, kappa=kappa)
    rows.append(["EP01-style emulator (ground partition)", "emulator", ep01.num_edges,
                 ep01.num_edges / n])

    tz06 = build_thorup_zwick_emulator(graph, kappa=kappa, seed=1)
    rows.append(["TZ06 scale-free emulator", "emulator", tz06.num_edges, tz06.num_edges / n])

    en17 = build_elkin_neiman_emulator(graph, eps=eps, kappa=kappa, seed=1)
    rows.append(["EN17a sampled emulator", "emulator", en17.num_edges, en17.num_edges / n])

    spanner = build(graph, BuildSpec(product="spanner", eps=0.01, kappa=4, rho=0.45))
    rows.append(["Section 4 near-additive spanner (kappa=4)", "spanner", spanner.size,
                 spanner.size / n])

    em19 = build_em19_spanner(graph, eps=0.01, kappa=4, rho=0.45)
    rows.append(["EM19-style spanner (kappa=4)", "spanner", em19.num_edges,
                 em19.num_edges / n])

    greedy = greedy_multiplicative_spanner(graph, 3)
    rows.append(["greedy 5-spanner (multiplicative)", "spanner", greedy.num_edges,
                 greedy.num_edges / n])

    print(format_table(
        ["construction", "type", "edges", "edges / n"],
        rows,
        title=f"sparsity comparison  (n = {n}, m = {m}, "
              f"ultra-sparse bound = {size_bound(n, kappa):.1f})",
    ))
    print("\nThe paper's emulator stays below n^(1+1/kappa) — essentially n + o(n) —")
    print("while every prior emulator needs a larger constant times n, and spanners")
    print("(which must be subgraphs) are denser still.")


if __name__ == "__main__":
    main()
