#!/usr/bin/env python3
"""Running the CONGEST-model construction on the network simulator.

Demonstrates the Section 3 distributed algorithm: every processor (vertex)
cooperates over synchronous rounds with O(1)-word messages to build the
emulator, and at the end **both endpoints of every emulator edge know about
it** — the property that makes the construction usable for distributed
approximate shortest paths and routing.

The example builds the emulator for a ring-of-cliques topology (locally
dense, globally sparse — a natural "data-center pods on a ring" shape),
reports rounds and messages, and compares them against the paper's
``O(beta * n^rho)`` round bound.

Run with::

    python examples/distributed_construction.py
"""

from __future__ import annotations

from repro import BuildSpec, build, generators, size_bound, verify_emulator


def main() -> None:
    # 12 pods of 12 tightly connected machines, joined in a ring.
    graph = generators.ring_of_cliques(12, 12)
    n = graph.num_vertices
    print(f"topology: ring of 12 cliques, {n} vertices, {graph.num_edges} edges")

    kappa, rho, eps = 4, 0.45, 0.01
    result = build(
        graph,
        BuildSpec(product="emulator", method="congest", eps=eps, kappa=kappa, rho=rho),
    ).raw

    print(f"emulator: {result.num_edges} edges "
          f"(bound n^(1+1/{kappa}) = {size_bound(n, kappa):.1f})")
    print(f"CONGEST cost: {result.rounds} rounds, {result.messages} messages")
    print(f"round bound beta * n^rho = {result.round_bound:.2e} "
          f"(measured/bound = {result.rounds / result.round_bound:.4f})")
    print(f"both endpoints know every edge: {result.both_endpoints_know_all_edges()}")

    # Per-phase view of the superclustering / interconnection work.
    print("\nphase  clusters  popular  superclusters  interconn.edges  supercl.edges")
    for stats in result.phase_stats:
        print(f"{stats.phase:>5}  {stats.num_clusters:>8}  {stats.popular_centers:>7}  "
              f"{stats.superclusters_formed:>13}  {stats.interconnection_edges:>15}  "
              f"{stats.superclustering_edges:>13}")

    # The emulator still satisfies the stretch guarantee.
    report = verify_emulator(graph, result.emulator, result.schedule.alpha,
                             result.schedule.beta, sample_pairs=400)
    print(f"\nstretch check on {report.pairs_checked} sampled pairs: valid = {report.valid}, "
          f"worst multiplicative = {report.max_multiplicative_stretch:.3f}, "
          f"worst additive = {report.max_additive_error:.0f}")


if __name__ == "__main__":
    main()
