#!/usr/bin/env python3
"""Example: the streaming and decremental settings the paper's intro motivates.

Two short scenarios on the same input graph:

1. **Streaming.**  The graph arrives as an edge stream.  We build (a) the
   classic one-pass greedy multiplicative spanner and (b) the pass-per-phase
   near-additive emulator, and report passes, peak memory, and output size.

2. **Decremental.**  Edges fail over time.  A
   :class:`~repro.applications.dynamic.DecrementalEmulatorOracle` keeps
   answering approximate distance queries while rebuilding its emulator only
   occasionally.

Run it with::

    python examples/streaming_and_dynamic.py
"""

from __future__ import annotations

import random

from repro.applications import (
    DecrementalEmulatorOracle,
    EdgeStream,
    StreamingEmulatorBuilder,
    streaming_greedy_spanner,
)
from repro.graphs import generators
from repro.graphs.shortest_paths import bfs_distances


def streaming_scenario(graph) -> None:
    """Build spanner and emulator from an edge stream and report the accounting."""
    print("== streaming ==")
    stream = EdgeStream.from_graph(graph)
    spanner, spanner_stats = streaming_greedy_spanner(stream, k=3)
    print(f"one-pass greedy 5-spanner: {spanner.num_edges} edges "
          f"({spanner_stats.passes} pass, peak memory {spanner_stats.peak_memory_edges} edges)")

    stream = EdgeStream.from_graph(graph)
    result, emulator_stats = StreamingEmulatorBuilder(stream, eps=0.1).build()
    print(f"pass-per-phase emulator:   {result.num_edges} edges "
          f"({emulator_stats.passes} passes, peak memory "
          f"{emulator_stats.peak_memory_edges} edges)")


def decremental_scenario(graph, num_failures: int = 30) -> None:
    """Delete random edges while querying distances."""
    print("\n== decremental ==")
    oracle = DecrementalEmulatorOracle(graph, eps=0.1, rebuild_every=10)
    rng = random.Random(7)
    edges = sorted(graph.edges())
    rng.shuffle(edges)

    u, v = 0, graph.num_vertices - 1
    for step, edge in enumerate(edges[:num_failures], start=1):
        oracle.delete_edge(*edge)
        if step % 10 == 0:
            answer = oracle.query(u, v)
            exact = bfs_distances(oracle.graph, u).get(v, float("inf"))
            print(f"after {step:>3} failures: oracle d({u},{v}) = {answer:>5.1f} "
                  f"(exact {exact}), rebuilds so far: {oracle.stats.rebuilds}")
    stats = oracle.stats
    print(f"total: {stats.deletions} deletions, {stats.rebuilds} rebuilds "
          f"({stats.amortized_rebuild_ratio:.2f} rebuilds per deletion, "
          f"{stats.forced_rebuilds} forced)")


def main() -> None:
    """Run both scenarios on a sparse random graph."""
    graph = generators.connected_erdos_renyi(200, 0.03, seed=11)
    print(f"input graph: {graph.num_vertices} vertices, {graph.num_edges} edges\n")
    streaming_scenario(graph)
    decremental_scenario(graph)


if __name__ == "__main__":
    main()
