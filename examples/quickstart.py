#!/usr/bin/env python3
"""Quickstart: build and validate an ultra-sparse near-additive emulator.

Builds the paper's emulator (Algorithm 1) for a sparse random graph, checks
the size bound ``n^(1 + 1/kappa)`` and the ``(1 + eps, beta)`` stretch
guarantee, and prints a short summary.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import build_emulator, generators, size_bound, verify_emulator
from repro.analysis.metrics import stretch_distribution


def main() -> None:
    # 1. An input graph: a connected sparse random graph on 400 vertices.
    graph = generators.connected_erdos_renyi(400, p=0.015, seed=42)
    print(f"input graph: {graph.num_vertices} vertices, {graph.num_edges} edges")

    # 2. Build the emulator.  kappa controls sparsity: at most n^(1 + 1/kappa)
    #    edges; eps controls the distance thresholds (the final multiplicative
    #    stretch is 1 + 34 * eps * ell).
    kappa = 4
    result = build_emulator(graph, eps=0.1, kappa=kappa)
    bound = size_bound(graph.num_vertices, kappa)
    print(f"emulator: {result.num_edges} edges "
          f"(bound n^(1+1/{kappa}) = {bound:.1f}, ratio {result.num_edges / bound:.3f})")
    print(f"guaranteed stretch: (1 + eps') = {result.alpha:.2f}, beta = {result.beta:.1f}")

    # 3. Validate the stretch guarantee on sampled vertex pairs.
    report = verify_emulator(graph, result.emulator, result.alpha, result.beta,
                             sample_pairs=500)
    print(f"checked {report.pairs_checked} pairs: valid = {report.valid}")
    print(f"worst measured multiplicative stretch: {report.max_multiplicative_stretch:.3f}")
    print(f"worst measured additive error:        {report.max_additive_error:.1f}")

    # 4. A finer look at the stretch distribution.
    dist = stretch_distribution(graph, result.emulator, sample_pairs=500)
    print(f"mean multiplicative stretch: {dist['mean_multiplicative']:.3f}, "
          f"95th-percentile additive error: {dist['p95_additive']:.1f}")

    # 5. How the edges were paid for (the charging argument of the size proof).
    ledger = result.ledger
    print(f"edge charges: {ledger.interconnection_count()} interconnection, "
          f"{ledger.superclustering_count()} superclustering, across "
          f"{len(result.phase_stats)} phases")


if __name__ == "__main__":
    main()
