#!/usr/bin/env python3
"""Quickstart: build and validate an ultra-sparse near-additive emulator.

Uses the unified facade API — one :class:`repro.BuildSpec` describing *what*
to build (``product``) and *how* (``method``), one :func:`repro.build` call,
and one common result shape with a ``.verify(graph)`` method.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import BuildSpec, build, generators, size_bound
from repro.analysis.metrics import stretch_distribution


def main() -> None:
    # 1. An input graph: a connected sparse random graph on 400 vertices.
    graph = generators.connected_erdos_renyi(400, p=0.015, seed=42)
    print(f"input graph: {graph.num_vertices} vertices, {graph.num_edges} edges")

    # 2. Describe the build as configuration.  kappa controls sparsity: at
    #    most n^(1 + 1/kappa) edges; eps controls the distance thresholds
    #    (the final multiplicative stretch is 1 + 34 * eps * ell).
    kappa = 4
    spec = BuildSpec(product="emulator", method="centralized", eps=0.1, kappa=kappa)
    result = build(graph, spec)
    bound = size_bound(graph.num_vertices, kappa)
    print(f"built {spec.describe()} in {result.elapsed:.3f}s")
    print(f"emulator: {result.size} edges "
          f"(bound n^(1+1/{kappa}) = {bound:.1f}, ratio {result.size / bound:.3f})")
    print(f"guaranteed stretch: (1 + eps') = {result.alpha:.2f}, beta = {result.beta:.1f}")

    # 3. Validate the stretch guarantee on sampled vertex pairs — the result
    #    object knows which validator fits its product.
    report = result.verify(graph, sample_pairs=500)
    print(f"checked {report.pairs_checked} pairs: valid = {report.valid}")
    print(f"worst measured multiplicative stretch: {report.max_multiplicative_stretch:.3f}")
    print(f"worst measured additive error:        {report.max_additive_error:.1f}")

    # 4. A finer look at the stretch distribution.
    dist = stretch_distribution(graph, result.raw.emulator, sample_pairs=500)
    print(f"mean multiplicative stretch: {dist['mean_multiplicative']:.3f}, "
          f"95th-percentile additive error: {dist['p95_additive']:.1f}")

    # 5. Construction-specific details stay available on .raw — here, how
    #    the edges were paid for (the charging argument of the size proof).
    ledger = result.raw.ledger
    print(f"edge charges: {ledger.interconnection_count()} interconnection, "
          f"{ledger.superclustering_count()} superclustering, across "
          f"{result.stats['num_phases']} phases")

    # 6. The same facade builds every other product: swap the spec, not the
    #    call site.
    for other in (BuildSpec(product="spanner", kappa=kappa),
                  BuildSpec(product="hopset")):
        r = build(graph, other)
        print(f"{other.describe()}: {r.size} edges in {r.elapsed:.3f}s")


if __name__ == "__main__":
    main()
